// Package flow scales CFAOPC beyond a single simulation tile: it cuts a
// large layout into overlapping windows, optimizes each window
// independently (optics are shift-invariant, so one kernel set serves
// every window), and stitches the per-window shot lists back together,
// keeping only shots whose centers fall in each window's core region.
// This is the standard halo-and-stitch deployment of tile-based ILT on
// full-chip layouts.
//
// The flow is memory-bounded end to end: window targets are rasterized
// on demand from a row-bucketed span index over the rect geometry
// (layout.WindowIndex), never from a dense full-grid raster, and the
// stitched mask is opt-in — Config.KeepMask materializes the dense
// GridN² grid, Config.MaskWriter streams it as row bands instead, and
// with neither set the shot list is the only output. Peak flow memory
// scales with the window size and worker count, not GridN²
// (Result.PeakBytes makes that observable).
//
// Windows are independent, so Run distributes them over a bounded pool of
// tile workers (Config.TileWorkers), each owning a private
// litho.Simulator. Kernel sets are shared read-only through the optics
// cache, so per-worker simulator construction is cheap. Per-tile results
// are collected into a slice indexed by row-major tile order and reduced
// in that order, so the stitched shot list and mask are bit-identical at
// any worker count — the same determinism contract litho.Simulator.Workers
// documents for per-kernel parallelism.
//
// A full-chip run is also long and partially hostile territory — one
// degenerate window must never cost the other 9,999 — so the flow carries
// a fault envelope:
//
//   - Cancellation. RunContext threads a context through the worker pool
//     and into each worker's simulator, so SIGINT or a deadline stops the
//     run within one kernel convolution and returns ctx.Err().
//   - Isolation. Each optimizer attempt runs under recover() and its
//     output is validated (no NaNs, radii in bounds, centers inside the
//     window). A bad tile is retried (Config.TileRetries), then degraded
//     to Config.Fallback, then to an empty tile — never a crashed run.
//     TileStat records every attempt's outcome and failure mode.
//   - Liveness. Engines emit per-iteration heartbeats (opt.Beat); with
//     Config.StallTimeout set, a per-attempt watchdog kills an optimizer
//     whose heartbeats stop — a wedge — long before the wall deadline
//     (Config.TileTimeout) would, while an equally slow but heartbeating
//     attempt runs on. TileStat.{Iters, LastLoss, Stalled} surface the
//     heartbeat stream.
//   - Restartability. With Config.CheckpointPath set, every completed
//     tile is journaled through internal/checkpoint; a rerun replays the
//     journal, skips finished tiles, and still reduces in row-major
//     order, so a resumed run's shot list and mask are bit-identical to
//     an uninterrupted one. Config.PartialEvery additionally journals
//     iteration-level snapshots inside long CircleOpt tiles, so a killed
//     run restarts a half-finished tile from its last recorded circle
//     parameters — and, because the Adam state rides along, replays the
//     uninterrupted trajectory exactly. CompactCheckpoint rewrites a
//     journal with superseded records dropped.
//   - Forensics. A tile that exhausts every engine degrades to empty but
//     no longer silently: with Config.QuarantineDir set, the flow writes
//     a self-contained repro bundle (window target, owning rects, config
//     fingerprint, per-attempt history, injected-fault script) through
//     internal/quarantine; cmd/replaytile replays bundles offline via
//     ReplayWindow.
package flow

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cfaopc/internal/checkpoint"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/iox"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/opt"
	"cfaopc/internal/optics"
	"cfaopc/internal/quarantine"
	"cfaopc/internal/wcache"
)

// Optimizer produces a mask and shot list for one window target.
type Optimizer func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle)

// ErrStalled marks an optimizer attempt killed by the stall watchdog:
// no heartbeat arrived within Config.StallTimeout, so the attempt was
// wedged, not slow.
var ErrStalled = errors.New("optimizer stalled")

// ErrDrained marks a run stopped by Config.Drain: no new tiles were
// dispatched after the drain signal, in-flight tiles finished and were
// checkpointed, and RunContext returned the partial Result alongside
// this error — the only error RunContext pairs with a non-nil Result.
var ErrDrained = errors.New("flow: run drained before completion")

// Config controls the tiling.
type Config struct {
	// GridN is the pixel count across the full layout.
	GridN int
	// CorePx is the core (owned) region edge of each window; shots whose
	// centers fall here are kept.
	CorePx int
	// HaloPx is the optical context margin added on every side of a core;
	// it should exceed the optical interaction range (~λ/NA ≈ 143 nm).
	HaloPx int
	// Optics is the imaging condition; TileNM is overridden per window.
	Optics optics.Config
	// KOpt truncates kernels during per-window optimization.
	KOpt int
	// Workers sets the per-window litho parallelism (see litho.Simulator).
	Workers int
	// TileWorkers bounds the windows optimized concurrently. Zero or one
	// runs serially; negative uses GOMAXPROCS. Each worker owns a private
	// simulator and results are reduced in row-major tile order, so the
	// output is bit-identical at any worker count (assuming Optimize is
	// deterministic for a given simulator and target).
	TileWorkers int
	// Optimize runs on each window (e.g. a core.CircleOpt wrapper). It
	// must be safe to call concurrently on distinct simulators.
	Optimize Optimizer

	// TileRetries is how many extra times a failed window is re-attempted
	// with Optimize before degrading. Zero means one attempt only.
	TileRetries int
	// Fallback, when non-nil, runs once after Optimize (and its retries)
	// failed — typically a cheaper, hardier engine such as rule-based
	// fracturing of the rasterized target (CircleRule) standing in for
	// CircleOpt. If it also fails, the tile degrades to empty.
	Fallback Optimizer
	// TileTimeout bounds the wall time of a single optimizer attempt.
	// A timed-out attempt counts as a failure (and is retried / degraded
	// like one); zero disables the deadline.
	TileTimeout time.Duration
	// StallTimeout bounds the gap between optimizer heartbeats within a
	// single attempt. Engines emit one heartbeat per iteration
	// (opt.Beat); when the stream goes quiet for this long the attempt
	// is killed as stalled — distinguishing a wedged optimizer from a
	// legitimately slow one, which TileTimeout alone cannot. The attempt
	// start counts as the first heartbeat, so enable this only with
	// engines that heartbeat (or finish) faster than the window. Zero
	// disables the watchdog. Must not exceed a non-zero TileTimeout.
	StallTimeout time.Duration
	// RMinPx / RMaxPx bound valid shot radii (in window-grid pixels) for
	// output validation; a shot outside [RMinPx, RMaxPx] fails the tile.
	// Both zero disables the radius check.
	RMinPx, RMaxPx float64
	// CheckpointPath, when non-empty, journals every completed tile
	// (shots + stat) so an interrupted run resumes instead of restarting.
	// The journal is bound to the (layout, tiling) fingerprint: reusing a
	// path across different runs is an error, not silent corruption.
	CheckpointPath string
	// PartialEvery, when > 0 and checkpointing is on, additionally
	// journals a snapshot of snapshot-capable optimizers (CircleOpt's
	// circle parameters plus Adam state) every that many iterations, so
	// a killed run resumes a half-finished tile mid-optimization instead
	// of from scratch. Superseded snapshots are dropped by
	// CompactCheckpoint.
	PartialEvery int
	// QuarantineDir, when non-empty, receives a self-contained repro
	// bundle (internal/quarantine) for every tile that degrades to
	// empty. A bundle write failure loses that tile's forensics but
	// never the tile or the run: the drop is counted in
	// Result.QuarantineDropped (StrictStorage restores fail-fast).
	QuarantineDir string

	// FS is the filesystem seam for the run's persistence side effects —
	// checkpoint journal, quarantine bundles — used by fault-injection
	// and crash-consistency tests. Nil means the real filesystem. The
	// dedup cache carries its own seam (wcache.Config.FS), since the
	// cache object usually outlives one run.
	FS iox.FS
	// StrictStorage restores the pre-degradation policy: a checkpoint
	// append/sync failure or a quarantine bundle write failure fails the
	// run instead of degrading it. Default false — an OPC run that has
	// burned hours of compute finishes correct-but-unresumable rather
	// than dying because the disk filled.
	StrictStorage bool
	// Faults, when non-nil, wraps Optimize and Fallback with
	// deterministic fault injection (see InjectFaults) AND records each
	// quarantined tile's script into its bundle, so replays re-inject
	// the same failures. Tests that wrap optimizers with InjectFaults
	// directly still work but leave bundles without a script.
	Faults FaultPlan
	// Engines describes how to rebuild Optimize/Fallback offline (method
	// names + knobs). It is copied verbatim into quarantine bundles so
	// cmd/replaytile can reconstruct the exact attempt sequence; the
	// flow itself never interprets it.
	Engines quarantine.EngineMeta

	// KeepMask materializes Result.Mask, a dense GridN² re-rasterization
	// of the stitched shot list. The shot list is the primary output; on
	// real full-chip grids the dense mask is the memory ceiling, so it is
	// opt-in. Leave it false and set MaskWriter to stream the mask in
	// O(GridN·CorePx) bands instead.
	KeepMask bool
	// MaskWriter, when non-nil, receives the stitched mask as ordered
	// horizontal bands (one per tile row) whose concatenation is
	// byte-identical to the KeepMask dense mask. With RMaxPx set, bands
	// stream out as their contributing tile rows complete; without a
	// radius bound they are all emitted when the last tile finishes.
	MaskWriter MaskWriter

	// ProcWorkers, when > 0, dispatches tiles to that many supervised
	// worker subprocesses instead of in-process goroutines, so a
	// process-fatal tile failure (OOM kill, runtime fatal, wedged FFT)
	// costs one dispatch, not the run. Each worker slot detects
	// crash/EOF/heartbeat silence, respawns its process with exponential
	// backoff and jitter, and circuit-breaks to the in-process
	// degradation ladder after ProcCrashLimit consecutive failures — the
	// run always completes. The determinism contract extends across the
	// process boundary: for any mix of proc and in-process execution,
	// crashes, respawns, and checkpoint resume, the stitched shot list
	// and streamed bands are byte-identical to the serial in-process
	// run. TileWorkers is ignored when ProcWorkers is set.
	ProcWorkers int
	// WorkerCmd builds one worker subprocess command (required when
	// ProcWorkers > 0; must be safe to call concurrently). The
	// supervisor forces procpool.WorkerEnv=1 into its environment; the
	// child must detect that (procpool.InWorker) and serve frames on
	// stdin/stdout — cmd/tileworker, or any binary embedding
	// internal/procworker.
	WorkerCmd func() *exec.Cmd
	// ProcCrashLimit is how many consecutive failed dispatches break a
	// worker slot to in-process execution. Zero means the default (3).
	ProcCrashLimit int
	// ProcSilence kills a worker that emits no frame (ping, heartbeat,
	// snapshot, reply) for this long while a task is in flight — the
	// cross-process analogue of StallTimeout, catching a process that is
	// alive but wedged beyond even its ping loop. Zero means the default
	// (10s); it should comfortably exceed the worker's ~100ms ping
	// cadence.
	ProcSilence time.Duration
	// ProcBackoff is the base delay before respawning a crashed worker;
	// it doubles per consecutive crash (capped at 2s) with jitter so a
	// crash-looping fleet does not respawn in lockstep. Zero means the
	// default (50ms).
	ProcBackoff time.Duration

	// RemoteHosts, when non-empty, shards tiles across TCP tile-worker
	// hosts (cmd/tileworker -listen) instead of local subprocesses: one
	// supervised slot per host, speaking the same frame protocol over
	// the network. The PR 5 supervisor machinery carries over with the
	// transport swapped — respawn becomes reconnect with exponential
	// backoff + jitter, the silence watchdog covers dead links and
	// stalled remotes, and a per-host circuit breaker degrades a
	// flapping host's tiles to the local in-process ladder (and, with
	// RemoteCooldown, probes it again later). The determinism contract
	// is unchanged: results reduce in row-major tile order and resume
	// state is journal-keyed, so shots, streamed bands and checkpoints
	// are byte-identical for any host mix, reconnect history, and
	// interrupt+resume — including a run where zero hosts are reachable,
	// which completes entirely on the local ladder. Mutually exclusive
	// with ProcWorkers; requires Engines metadata like proc mode.
	RemoteHosts []string
	// RemoteDial overrides the transport used to reach RemoteHosts
	// (tests route through in-memory pipes or a chaos proxy). Nil dials
	// plain TCP.
	RemoteDial func(ctx context.Context, addr string) (net.Conn, error)
	// RemoteSilence is the per-link silence watchdog: a host that sends
	// no frame for this long while a task is in flight is presumed dead
	// or partitioned and its link is cut. Zero means the default (10s).
	RemoteSilence time.Duration
	// RemoteBackoff is the base reconnect delay; it doubles per
	// consecutive failure (capped at 2s) with jitter. Zero means the
	// default (50ms).
	RemoteBackoff time.Duration
	// RemoteCrashLimit is how many consecutive failed dispatches open a
	// host's circuit breaker. Zero means the default (3).
	RemoteCrashLimit int
	// RemoteCooldown is how long an open breaker waits before letting
	// one probe dispatch through (half-open) — a degraded host can
	// rejoin the run. Zero means the default (5s); negative makes the
	// breaker terminal like a subprocess slot's.
	RemoteCooldown time.Duration
	// RemoteHandshake bounds each dial + Hello exchange. Zero means the
	// default (5s).
	RemoteHandshake time.Duration

	// Cache, when non-nil, is the window dedup cache: each eligible tile
	// is keyed by a canonical content hash (window target raster, owning
	// rect spans in window-local coordinates, core geometry, and the
	// run's config fingerprint), and a hit translates the cached
	// window-local shots into place instead of re-optimizing. The cache
	// changes wall time only — shots, streamed bands, and checkpoint
	// journals are byte-identical with the cache on or off, because the
	// key covers every input the (deterministic) optimizer sees. Tiles
	// with an injected fault script bypass the cache in both directions,
	// as do tiles resuming from a partial checkpoint snapshot (they must
	// replay their journaled trajectory). Only real results are stored;
	// a tile that degraded to empty is never served to a twin.
	Cache *wcache.Cache

	// AdaptiveTiles plans the tiling from layout occupancy instead of a
	// uniform CorePx grid: sparse 2×2 blocks merge into one large tile,
	// dense cells split into four small ones, and provably-empty regions
	// are skipped without rasterizing. The plan is deterministic (from
	// layout.WindowIndex occupancy) and sorted row-major, so determinism,
	// checkpointing, and band streaming all hold exactly as in uniform
	// mode; the adaptive knobs are part of the checkpoint fingerprint, so
	// a journal can't silently cross tiling modes.
	AdaptiveTiles bool
	// AdaptiveMergeMax is the maximum merged-window occupancy fraction
	// for a 2×2 merge (default 0.02); AdaptiveSplitMin is the minimum
	// window occupancy fraction that splits a cell (default 0.35; split
	// requires even CorePx). Both are fractions of window pixel area.
	AdaptiveMergeMax float64
	AdaptiveSplitMin float64

	// Drain, when non-nil and closed mid-run, stops dispatching new
	// tiles: in-flight tiles finish and are journaled, the checkpoint is
	// synced, and RunContext returns its partial Result with ErrDrained.
	// This is the graceful half of two-stage shutdown; hard cancellation
	// stays on the context.
	Drain <-chan struct{}

	// Events, when non-nil, receives the run's live progress stream:
	// one EventBeat per optimizer heartbeat (forwarded across the
	// process and network boundaries in proc/remote mode) and exactly
	// one EventTile per completed tile, journal-replayed tiles
	// included. Events are observability only — they never alter the
	// result, and the run does not wait on the sink. See EventSink for
	// the concurrency contract the callback must honor.
	Events EventSink

	// QuarantineMaxBundles / QuarantineMaxBytes bound the quarantine
	// directory: after each bundle write the oldest .qrb+.json pairs are
	// pruned until both budgets hold (zero = unlimited on that axis).
	// The just-written bundle is the newest, so it always survives.
	QuarantineMaxBundles int
	QuarantineMaxBytes   int64
}

// procCrashLimit / procSilence / procBackoff resolve the supervision
// defaults documented on Config.
func (cfg Config) procCrashLimit() int {
	if cfg.ProcCrashLimit > 0 {
		return cfg.ProcCrashLimit
	}
	return 3
}

func (cfg Config) procSilence() time.Duration {
	if cfg.ProcSilence > 0 {
		return cfg.ProcSilence
	}
	return 10 * time.Second
}

func (cfg Config) procBackoff() time.Duration {
	if cfg.ProcBackoff > 0 {
		return cfg.ProcBackoff
	}
	return 50 * time.Millisecond
}

// remoteSilence / remoteBackoff / remoteCrashLimit / remoteCooldown /
// remoteHandshake resolve the remote-transport defaults documented on
// Config.
func (cfg Config) remoteSilence() time.Duration {
	if cfg.RemoteSilence > 0 {
		return cfg.RemoteSilence
	}
	return 10 * time.Second
}

func (cfg Config) remoteBackoff() time.Duration {
	if cfg.RemoteBackoff > 0 {
		return cfg.RemoteBackoff
	}
	return 50 * time.Millisecond
}

func (cfg Config) remoteCrashLimit() int {
	if cfg.RemoteCrashLimit > 0 {
		return cfg.RemoteCrashLimit
	}
	return 3
}

func (cfg Config) remoteCooldown() time.Duration {
	if cfg.RemoteCooldown < 0 {
		return 0 // terminal breaker, like a subprocess slot
	}
	if cfg.RemoteCooldown > 0 {
		return cfg.RemoteCooldown
	}
	return 5 * time.Second
}

func (cfg Config) remoteHandshake() time.Duration {
	if cfg.RemoteHandshake > 0 {
		return cfg.RemoteHandshake
	}
	return 5 * time.Second
}

// withInjectedFaults resolves Config.Faults into wrapped optimizers.
// Both the primary and the fallback see the same plan; attempt indices
// are global per tile (fallback = TileRetries+1), so one script drives
// the whole degradation trajectory.
func (cfg Config) withInjectedFaults() Config {
	if cfg.Faults == nil {
		return cfg
	}
	cfg.Optimize = InjectFaults(cfg.Optimize, cfg.Faults)
	if cfg.Fallback != nil {
		cfg.Fallback = InjectFaults(cfg.Fallback, cfg.Faults)
	}
	return cfg
}

// Outcome paths recorded in TileStat.Path.
const (
	PathPrimary  = "primary"  // Optimize succeeded (possibly after retries)
	PathFallback = "fallback" // Optimize exhausted retries; Fallback succeeded
	PathEmpty    = "empty"    // both failed; the tile contributes no shots
)

// TileStat records what one window contributed to the stitched result.
type TileStat struct {
	Index    int           // row-major window index (plan order)
	CX, CY   int           // core origin in full-grid pixels
	Core     int           // core edge in px (adaptive tiles differ from Config.CorePx)
	Window   int           // window edge in px (core + 2·halo)
	Occupied bool          // window held target geometry and was optimized
	Shots    int           // core-owned shots kept from this window
	Wall     time.Duration // wall time spent on this window
	// RasterWall is the slice of Wall spent rasterizing the window target
	// from the rect geometry (the streaming replacement for extracting it
	// out of a full-grid raster).
	RasterWall time.Duration

	Attempts int // optimizer invocations (primary + fallback); 0 if unoccupied
	Path     string
	// Failure joins every failed attempt's error (attempt-indexed, in
	// order), capped at maxFailureBytes so pathological error strings
	// cannot bloat checkpoints or stats. "" when the first attempt
	// succeeded.
	Failure string
	Resumed bool // replayed from the checkpoint journal, not recomputed

	Iters    int     // optimizer heartbeats received across all attempts
	LastLoss float64 // loss reported by the most recent heartbeat
	Stalled  bool    // some attempt was killed by the stall watchdog
	// Bundle is the quarantine repro bundle path for a tile that
	// degraded to empty ("" otherwise, or when no QuarantineDir is set).
	Bundle string

	// Proc marks a tile whose final result came from a worker
	// subprocess; a tile computed in-process (serial mode, or a
	// circuit-broken slot) leaves it false.
	Proc bool
	// Host is the remote host that produced this tile's final result
	// ("" for subprocess, in-process, and breaker-degraded tiles).
	// Provenance only: the result bytes are host-independent.
	Host string
	// ProcCrashes counts failed dispatches (worker death, silence kill,
	// or a worker-reported task error) suffered while this tile was in
	// flight; the tile still completed through respawn or the
	// in-process breaker path.
	ProcCrashes int

	// CacheHit marks a tile answered by translating a cached twin's
	// shots instead of optimizing; its Path/Attempts/Iters/LastLoss are
	// inherited from the twin's record. CacheKey is the canonical
	// content hash computed for every cache-eligible tile (hit or miss);
	// "" when the cache was off or the tile was excluded (fault script,
	// skip tile).
	CacheHit bool
	CacheKey string
}

// AttemptOutcome records one optimizer invocation for forensics: it
// feeds TileStat.Failure, quarantine bundles, and replay comparison.
type AttemptOutcome struct {
	Attempt  int    // global attempt counter; the fallback is TileRetries+1
	Engine   string // "primary" or "fallback"
	Err      string // "" on success; capped at maxAttemptErrBytes
	Iters    int    // heartbeats emitted during this attempt
	LastLoss float64
	Stalled  bool // killed by the stall watchdog
}

// Result is the stitched output.
type Result struct {
	// Mask is the full-grid mask re-rasterized from the shots — nil
	// unless Config.KeepMask asked for it (streamed runs never hold a
	// dense full-grid mask).
	Mask      *grid.Real
	Shots     []geom.Circle // full-grid shot list
	Tiles     int           // number of windows optimized
	TileStats []TileStat    // per-window records in row-major order

	Retried     int // tiles that needed >1 attempt but still finished on Optimize
	Fallbacks   int // tiles that degraded to the Fallback optimizer
	Empty       int // tiles degraded to empty after every optimizer failed
	Resumed     int // tiles replayed from the checkpoint journal
	Stalled     int // tiles where the stall watchdog killed an attempt
	Quarantined int // tiles that wrote a quarantine repro bundle

	// Completed counts tiles accounted for (computed or replayed); it
	// equals Tiles except on a drained run.
	Completed int
	// ProcCrashes totals failed worker dispatches across the run;
	// Broken counts worker slots that circuit-broke to in-process
	// execution. Both stay zero without ProcWorkers.
	ProcCrashes int
	Broken      int
	// RemoteCrashes totals failed remote dispatches (connect failures,
	// link drops, silence kills, rejected handshakes); RemoteBroken
	// counts breaker-open episodes across hosts (a host that degrades,
	// heals, and degrades again counts twice). Both stay zero without
	// RemoteHosts.
	RemoteCrashes int
	RemoteBroken  int

	// CacheHits / CacheMisses count cache lookups by freshly processed
	// tiles (replayed-from-journal tiles perform none); CacheBytes is
	// the cache's resident in-memory size at run end. All zero when
	// Config.Cache is nil.
	CacheHits   int
	CacheMisses int
	CacheBytes  int64

	// Merged / Split / Skipped describe the adaptive plan: 2×2 blocks
	// fused into one tile, cells fractured into four, and tiles proven
	// empty by the occupancy scan (never rasterized). All zero in
	// uniform mode.
	Merged  int
	Split   int
	Skipped int

	// PeakBytes estimates the peak bytes of flow-owned buffers held
	// resident during the run: the layout span index, one window target
	// per tile worker, the in-flight mask band (when streaming), the
	// dense mask (when kept) and the stitched shot list. Optimizer- and
	// simulator-internal allocations are not counted; the estimate's job
	// is to make the O(window²) vs O(GridN²) scaling observable.
	PeakBytes int64

	// CheckpointDegraded marks a run whose checkpoint journal suffered a
	// write or sync failure after opening: the run's outputs are still
	// complete and correct, but tiles finished after the failure were
	// not journaled, so a crash would re-optimize them. CheckpointErr
	// holds the first storage error. Both zero under StrictStorage
	// (the run fails instead) and on healthy storage.
	CheckpointDegraded bool
	CheckpointErr      string
	// QuarantineDropped counts empty tiles whose repro bundle could not
	// be written (disk fault); the tiles themselves completed normally.
	QuarantineDropped int
}

// maxFailureBytes caps TileStat.Failure; maxAttemptErrBytes caps each
// individual attempt error as recorded in outcomes and bundles.
const (
	maxFailureBytes    = 1024
	maxAttemptErrBytes = 2048
)

// tileWorkerCount resolves the effective tile parallelism.
func tileWorkerCount(w, jobs int) int {
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// extractWindow copies the window×window region at origin (ox, oy) out of
// the full rasterized layout into a fresh target grid, reporting whether
// any pixel is occupied. The origin may be negative and the window may
// extend past the grid at the borders; out-of-grid pixels stay empty.
func extractWindow(full *grid.Real, ox, oy, window int) (*grid.Real, bool) {
	target := grid.NewReal(window, window)
	occupied := false
	for y := 0; y < window; y++ {
		fy := oy + y
		if fy < 0 || fy >= full.H {
			continue
		}
		for x := 0; x < window; x++ {
			fx := ox + x
			if fx < 0 || fx >= full.W {
				continue
			}
			v := full.Data[fy*full.W+fx]
			target.Data[y*window+x] = v
			if v > 0.5 {
				occupied = true
			}
		}
	}
	return target, occupied
}

// ownedShots translates window-local shots to full-grid coordinates and
// keeps those whose centers fall in the core [cx, cx+corePx) × [cy,
// cy+corePx) — the ownership rule that makes seam shots unique.
func ownedShots(shots []geom.Circle, ox, oy, cx, cy, corePx int) []geom.Circle {
	var kept []geom.Circle
	for _, s := range shots {
		gx := s.X + float64(ox)
		gy := s.Y + float64(oy)
		if gx < float64(cx) || gx >= float64(cx+corePx) ||
			gy < float64(cy) || gy >= float64(cy+corePx) {
			continue
		}
		kept = append(kept, geom.Circle{X: gx, Y: gy, R: s.R})
	}
	return kept
}

// tileJob identifies one window by its plan index, core origin, and —
// since tiling went adaptive — its own core/window edges. skip marks a
// tile the occupancy scan proved empty: no rasterization, no optimizer,
// no shots.
type tileJob struct {
	index  int
	cx, cy int
	core   int // core edge in px
	window int // window edge in px (core + 2·halo)
	skip   bool
}

// tileOut is one window's contribution before the ordered reduce. raw
// holds the full window-local shot list (pre-ownership-filter) so a
// fresh result can be published to the dedup cache for twins with any
// core placement.
type tileOut struct {
	shots []geom.Circle
	raw   []geom.Circle
	stat  TileStat
}

// runEnv is the per-run state shared by every tile worker: the resolved
// config (faults injected), the layout and its span index, the open
// journal and the partial snapshots replayed from it, plus an error
// channel for asynchronous failures (journal appends, bundle saves).
// ReplayWindow builds a minimal env with no layout, index or journal.
type runEnv struct {
	cfg       Config                         // effective config: Faults already wrapped in
	rawFaults FaultPlan                      // the unwrapped plan, recorded into bundles
	opticsFor func(window int) optics.Config // per-window-size imaging condition
	lay       *layout.Layout
	fp        []byte
	keyPrefix string // config fingerprint: the dedup cache key prefix
	ix        *layout.WindowIndex
	fsys      iox.FS // resolved Config.FS (never nil in a tiled run)
	journal   *checkpoint.Journal
	partials  map[int]partialRecord
	errCh     chan error

	// Checkpoint degradation state: on the first journal write/sync
	// failure (without StrictStorage) the run records the cause, stops
	// journaling, and keeps computing — correct but un-resumable.
	ckptOnce    sync.Once
	ckptDead    atomic.Bool
	ckptErr     atomic.Value // string: first storage error
	quarDropped atomic.Int64 // bundles lost to storage faults

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// partialSink receives mid-attempt optimizer snapshots (journal
	// append in a tiled run, a wire frame in a worker); nil disables
	// snapshotting regardless of PartialEvery.
	partialSink func(index, attempt int, s opt.Snapshot)
	// onBeat, when non-nil, observes every optimizer heartbeat in
	// addition to the per-attempt stall watchdog — a worker forwards
	// them to its supervisor as liveness frames.
	onBeat func(index, iter int, loss float64)
	// events is Config.Events: the run's progress subscriber (nil when
	// nobody is listening).
	events EventSink
	// dispatch is published on TileInfo (always 0 in-process; a
	// worker's redispatch counter otherwise).
	dispatch int

	// Proc mode: one shared set of in-process simulators (one per
	// window size in the plan) serves every circuit-broken slot
	// (serialized by fbMu), and the crash/breaker totals accumulate
	// across slots.
	fbSims      map[int]*litho.Simulator
	fbMu        sync.Mutex
	quarMu      sync.Mutex // serializes bundle saves with retention pruning
	procCrashes atomic.Int64
	procBroken  atomic.Int64
	// Remote mode keeps its own totals so a mixed report stays honest
	// about which transport suffered.
	remoteCrashes atomic.Int64
	remoteBroken  atomic.Int64
}

// reportErr surfaces the first asynchronous failure; later ones drop.
func (env *runEnv) reportErr(err error) {
	if env.errCh == nil {
		return
	}
	select {
	case env.errCh <- err:
	default:
	}
}

// degradeCheckpoint handles a journal write/sync failure per the
// durability contract: under StrictStorage it fails the run; otherwise
// it poisons journaling for the rest of the run (first cause recorded,
// later tiles simply skip the append) and the run finishes correct but
// un-resumable. The journal fd itself is already poisoned by
// internal/checkpoint, so nothing ever retries an fsync that failed.
func (env *runEnv) degradeCheckpoint(err error) {
	if env.cfg.StrictStorage {
		env.reportErr(fmt.Errorf("checkpoint append: %w", err))
		return
	}
	env.ckptOnce.Do(func() {
		env.ckptErr.Store(err.Error())
		env.ckptDead.Store(true)
	})
}

// journalHealthy reports whether checkpoint appends should still be
// attempted.
func (env *runEnv) journalHealthy() bool {
	return env.journal != nil && !env.ckptDead.Load()
}

// validateTile rejects optimizer output that would poison the stitched
// result: NaN/Inf masks, non-finite shots, radii outside [RMinPx, RMaxPx]
// and centers outside the window. Coordinates here are window-local.
func validateTile(mask *grid.Real, shots []geom.Circle, cfg Config, window int) error {
	if mask != nil {
		if mask.W != window || mask.H != window {
			return fmt.Errorf("mask %dx%d, window %d", mask.W, mask.H, window)
		}
		if mask.HasNaN() {
			return fmt.Errorf("mask has NaN/Inf pixels")
		}
	}
	const eps = 1e-9
	for i, s := range shots {
		if !finite(s.X) || !finite(s.Y) || !finite(s.R) {
			return fmt.Errorf("shot %d not finite: %+v", i, s)
		}
		if s.X < 0 || s.X > float64(window) || s.Y < 0 || s.Y > float64(window) {
			return fmt.Errorf("shot %d center (%g, %g) outside window %d", i, s.X, s.Y, window)
		}
		if cfg.RMinPx > 0 || cfg.RMaxPx > 0 {
			if s.R < cfg.RMinPx-eps || s.R > cfg.RMaxPx+eps {
				return fmt.Errorf("shot %d radius %g outside [%g, %g]", i, s.R, cfg.RMinPx, cfg.RMaxPx)
			}
		}
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// beatState accumulates one attempt's heartbeat stream. The optimizer
// goroutine writes through beat while the watchdog goroutine polls
// lastBeat, hence the lock.
type beatState struct {
	mu    sync.Mutex
	last  time.Time
	iters int
	loss  float64
}

func newBeatState() *beatState { return &beatState{last: time.Now()} }

func (b *beatState) beat(iter int, loss float64, at time.Time) {
	b.mu.Lock()
	b.last = at
	b.iters++
	b.loss = loss
	b.mu.Unlock()
}

func (b *beatState) lastBeat() time.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.last
}

func (b *beatState) totals() (iters int, loss float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.iters, b.loss
}

// watchdog cancels the attempt with ErrStalled when the heartbeat
// stream goes quiet for longer than stallAfter. Polling at a fraction
// of the window bounds detection latency to ~1.13·stallAfter.
func watchdog(tctx context.Context, cancel context.CancelCauseFunc, hb *beatState, stallAfter time.Duration, stop <-chan struct{}) {
	period := stallAfter / 8
	if period < time.Millisecond {
		period = time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tctx.Done():
			return
		case <-tick.C:
			if time.Since(hb.lastBeat()) > stallAfter {
				cancel(fmt.Errorf("%w: no heartbeat within %s", ErrStalled, stallAfter))
				return
			}
		}
	}
}

// attemptTile runs one optimizer invocation in isolation: a panic or
// invalid output becomes an error, the per-attempt wall deadline and
// the heartbeat stall watchdog are enforced through the simulator's
// cooperative context, and the tile's identity is published on that
// context for fault-injection harnesses. The returned outcome records
// the attempt for stats, bundles and replay comparison.
func (env *runEnv) attemptTile(ctx context.Context, sim *litho.Simulator, optimize Optimizer,
	target *grid.Real, j tileJob, attempt int, engine string) ([]geom.Circle, AttemptOutcome) {
	cfg := env.cfg
	out := AttemptOutcome{Attempt: attempt, Engine: engine}
	tctx := ctx
	if cfg.TileTimeout > 0 {
		var cancel context.CancelFunc
		tctx, cancel = context.WithTimeout(ctx, cfg.TileTimeout)
		defer cancel()
	}
	tctx, cancelCause := context.WithCancelCause(tctx)
	defer cancelCause(nil)
	tctx = context.WithValue(tctx, tileInfoKey{}, TileInfo{
		Index: j.index, Attempt: attempt, CX: j.cx, CY: j.cy, Dispatch: env.dispatch,
	})
	hb := newBeatState()
	beat := hb.beat
	if env.onBeat != nil {
		index := j.index
		beat = func(iter int, loss float64, at time.Time) {
			hb.beat(iter, loss, at)
			env.onBeat(index, iter, loss)
		}
	}
	tctx = opt.WithProgress(tctx, beat)
	if env.partialSink != nil && cfg.PartialEvery > 0 {
		index := j.index
		tctx = opt.WithSnapshots(tctx, func(s opt.Snapshot) {
			// A canceled attempt's parameters are garbage-contaminated
			// (the simulator aborts mid-kernel); journaling them would
			// poison the resume. Only live snapshots go to disk.
			if tctx.Err() != nil {
				return
			}
			env.partialSink(index, attempt, s)
		}, cfg.PartialEvery)
	}
	if p, ok := env.partials[j.index]; ok && p.Attempt == attempt {
		tctx = opt.WithResume(tctx, opt.Snapshot{
			Iter: p.Iter, Loss: p.Loss, Params: p.Params,
			OptT: p.OptT, OptM: p.OptM, OptV: p.OptV,
		})
	}
	if cfg.StallTimeout > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go watchdog(tctx, cancelCause, hb, cfg.StallTimeout, stop)
	}

	shots, err := runGuarded(tctx, sim, optimize, target, cfg, target.W)
	out.Iters, out.LastLoss = hb.totals()
	if err != nil {
		if errors.Is(err, ErrStalled) {
			out.Stalled = true
		}
		out.Err = capString(err.Error(), maxAttemptErrBytes)
		return nil, out
	}
	return shots, out
}

// runGuarded executes one optimizer call under panic recovery, checks
// the cooperative context afterwards (a canceled attempt's output is
// untrusted), and validates the output.
func runGuarded(tctx context.Context, sim *litho.Simulator, optimize Optimizer,
	target *grid.Real, cfg Config, window int) (shots []geom.Circle, err error) {
	sim.Ctx = tctx
	defer func() {
		sim.Ctx = nil
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	mask, shots := optimize(sim, target)
	if cerr := tctx.Err(); cerr != nil {
		// Canceled, timed out, or stall-killed mid-attempt: the output is
		// untrusted. The cancellation cause distinguishes the watchdog
		// (ErrStalled) from the wall deadline and run-level cancel.
		if cause := context.Cause(tctx); cause != nil && !errors.Is(cause, cerr) {
			return nil, cause
		}
		return nil, cerr
	}
	if verr := validateTile(mask, shots, cfg, window); verr != nil {
		return nil, fmt.Errorf("invalid output: %w", verr)
	}
	return shots, nil
}

// attemptSequence walks the degradation ladder for one window: primary
// with retries, then the fallback, then empty. It returns window-local
// shots, the outcome path ("" when the run was canceled mid-tile) and
// the per-attempt history.
func (env *runEnv) attemptSequence(ctx context.Context, sim *litho.Simulator, j tileJob,
	target *grid.Real) (shots []geom.Circle, path string, outcomes []AttemptOutcome) {
	cfg := env.cfg
	for attempt := 0; attempt <= cfg.TileRetries; attempt++ {
		if ctx.Err() != nil {
			return nil, "", outcomes // run canceled: abandon, don't degrade
		}
		s, out := env.attemptTile(ctx, sim, cfg.Optimize, target, j, attempt, "primary")
		outcomes = append(outcomes, out)
		if out.Err == "" {
			return s, PathPrimary, outcomes
		}
		if ctx.Err() != nil {
			return nil, "", outcomes
		}
	}
	if cfg.Fallback != nil {
		s, out := env.attemptTile(ctx, sim, cfg.Fallback, target, j, cfg.TileRetries+1, "fallback")
		outcomes = append(outcomes, out)
		if out.Err == "" {
			return s, PathFallback, outcomes
		}
		if ctx.Err() != nil {
			return nil, "", outcomes
		}
	}
	// Graceful floor: the window contributes nothing, the run survives.
	return nil, PathEmpty, outcomes
}

// applyOutcomes folds the attempt history into the tile stat.
func applyOutcomes(st *TileStat, outcomes []AttemptOutcome) {
	st.Attempts = len(outcomes)
	for _, o := range outcomes {
		st.Iters += o.Iters
		if o.Iters > 0 {
			st.LastLoss = o.LastLoss
		}
		if o.Stalled {
			st.Stalled = true
		}
	}
	st.Failure = joinFailures(outcomes)
}

// joinFailures renders the attempt-indexed error history, capped so a
// pathological error string can't bloat checkpoints or stats.
func joinFailures(outcomes []AttemptOutcome) string {
	var b strings.Builder
	for _, o := range outcomes {
		if o.Err == "" {
			continue
		}
		if b.Len() > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "attempt %d (%s): %s", o.Attempt, o.Engine, o.Err)
		if b.Len() > maxFailureBytes {
			break
		}
	}
	return capString(b.String(), maxFailureBytes)
}

func capString(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + " …[truncated]"
}

// runTile rasterizes, optimizes and filters one window, degrading
// through retry → fallback → empty instead of failing the run. The
// window target is rasterized on demand from the layout's span index —
// the streaming path; no full-grid raster exists anywhere. When ctx is
// canceled the tile is abandoned (stat.Path stays empty); Run turns that
// into ctx.Err() for the whole run. A tile that lands on PathEmpty
// writes its quarantine bundle here, from the worker that watched it
// fail.
func (env *runEnv) runTile(ctx context.Context, sims map[int]*litho.Simulator, j tileJob) tileOut {
	start := time.Now()
	cfg := env.cfg
	out := tileOut{stat: TileStat{Index: j.index, CX: j.cx, CY: j.cy, Core: j.core, Window: j.window}}
	defer func() { out.stat.Wall = time.Since(start) }()
	if j.skip {
		// The occupancy scan proved this window empty at plan time; it
		// contributes exactly what an unoccupied tile always has.
		return out
	}
	ox := j.cx - cfg.HaloPx
	oy := j.cy - cfg.HaloPx
	target, occupied := env.ix.Window(ox, oy, j.window, j.window)
	out.stat.Occupied = occupied
	out.stat.RasterWall = time.Since(start)
	if !occupied {
		return out
	}
	if env.tryCache(j, target, &out) {
		return out
	}
	env.ladder(ctx, sims[j.window], j, target, &out)
	env.storeCache(j, &out)
	return out
}

// ladder walks the in-process degradation sequence for one rasterized
// window and folds the outcome into out — the shared tail of runTile,
// a circuit-broken proc slot, and ReplayWindow-style single-window
// runs.
func (env *runEnv) ladder(ctx context.Context, sim *litho.Simulator, j tileJob,
	target *grid.Real, out *tileOut) {
	cfg := env.cfg
	ox := j.cx - cfg.HaloPx
	oy := j.cy - cfg.HaloPx
	shots, path, outcomes := env.attemptSequence(ctx, sim, j, target)
	out.stat.Path = path
	applyOutcomes(&out.stat, outcomes)
	switch path {
	case PathPrimary, PathFallback:
		out.raw = shots
		out.shots = ownedShots(shots, ox, oy, j.cx, j.cy, j.core)
		out.stat.Shots = len(out.shots)
	case PathEmpty:
		env.saveQuarantine(j, target, outcomes, &out.stat)
	}
}

// saveQuarantine writes the repro bundle for a tile that degraded to
// empty and then enforces the retention budget. Saves and prunes are
// serialized under quarMu so concurrent empty tiles cannot race the
// budget accounting.
func (env *runEnv) saveQuarantine(j tileJob, target *grid.Real, outcomes []AttemptOutcome, st *TileStat) {
	cfg := env.cfg
	if cfg.QuarantineDir == "" {
		return
	}
	env.quarMu.Lock()
	defer env.quarMu.Unlock()
	bpath, err := quarantine.SaveFS(env.fsys, cfg.QuarantineDir, env.buildBundle(j, target, outcomes))
	if err != nil {
		// Losing the bundle loses forensics, never the tile: the empty
		// result is already folded in, so the run continues and the drop
		// is counted (StrictStorage restores the old fail-fast policy).
		if cfg.StrictStorage {
			env.reportErr(fmt.Errorf("quarantine: %w", err))
		} else {
			env.quarDropped.Add(1)
		}
		return
	}
	st.Bundle = bpath
	if cfg.QuarantineMaxBundles > 0 || cfg.QuarantineMaxBytes > 0 {
		if _, perr := quarantine.Prune(cfg.QuarantineDir, cfg.QuarantineMaxBundles, cfg.QuarantineMaxBytes); perr != nil {
			if cfg.StrictStorage {
				env.reportErr(perr)
			} else {
				env.quarDropped.Add(1)
			}
		}
	}
}

// buildBundle assembles the self-contained repro artifact for a tile
// that exhausted every engine.
func (env *runEnv) buildBundle(j tileJob, target *grid.Real, outcomes []AttemptOutcome) *quarantine.Bundle {
	cfg := env.cfg
	ox := j.cx - cfg.HaloPx
	oy := j.cy - cfg.HaloPx
	b := &quarantine.Bundle{
		FormatVersion: quarantine.FormatVersion,
		Fingerprint:   string(env.fp),
		GridN:         cfg.GridN,
		CorePx:        cfg.CorePx,
		HaloPx:        cfg.HaloPx,
		KOpt:          cfg.KOpt,
		TileRetries:   cfg.TileRetries,
		TileTimeout:   cfg.TileTimeout,
		StallTimeout:  cfg.StallTimeout,
		RMinPx:        cfg.RMinPx,
		RMaxPx:        cfg.RMaxPx,
		Optics:        env.opticsFor(j.window),
		Engines:       cfg.Engines,
		Tile: quarantine.Tile{
			Index: j.index, CX: j.cx, CY: j.cy,
			OriginX: ox, OriginY: oy, WindowPx: j.window,
		},
		TargetW: target.W,
		TargetH: target.H,
		Target:  append([]float64(nil), target.Data...),
	}
	if env.lay != nil {
		b.LayoutName = env.lay.Name
		b.TileNM = env.lay.TileNM
		b.Rects = overlapRects(env.lay, cfg.GridN, ox, oy, j.window)
	}
	for _, f := range env.rawFaults[j.index] {
		b.Faults = append(b.Faults, quarantine.Fault{
			Sleep: f.Sleep, BeatEvery: f.BeatEvery, Stall: f.Stall,
			Panic: f.Panic, NaN: f.NaN, BadRadius: f.BadRadius, Kill: f.Kill,
		})
	}
	for _, o := range outcomes {
		b.Attempts = append(b.Attempts, quarantine.Attempt{
			Index: o.Attempt, Engine: o.Engine, Err: o.Err,
			Iters: o.Iters, LastLoss: o.LastLoss, Stalled: o.Stalled,
		})
	}
	return b
}

// overlapRects returns the layout rects (nm coordinates) whose extent
// overlaps the window [ox, ox+window)² given in grid pixels — the
// geometry a repro bundle needs to re-derive its target raster.
func overlapRects(l *layout.Layout, gridN, ox, oy, window int) []layout.Rect {
	dx := float64(l.TileNM) / float64(gridN)
	x0, x1 := float64(ox)*dx, float64(ox+window)*dx
	y0, y1 := float64(oy)*dx, float64(oy+window)*dx
	var out []layout.Rect
	for _, r := range l.Rects {
		if float64(r.X) < x1 && float64(r.X+r.W) > x0 &&
			float64(r.Y) < y1 && float64(r.Y+r.H) > y0 {
			out = append(out, r)
		}
	}
	return out
}

// tileRecord is the gob payload journaled per completed tile.
type tileRecord struct {
	Shots []geom.Circle
	Stat  TileStat
}

// partialRecord journals iteration-level progress inside a long
// snapshot-capable tile (CircleOpt): the flat circle parameters plus
// the Adam state after Iter stage-2 iterations of the given attempt.
// On resume the tile warm-starts from here and — because the optimizer
// state rides along — replays the uninterrupted trajectory exactly.
type partialRecord struct {
	Index   int
	Attempt int
	Iter    int
	Loss    float64
	Params  []float64
	OptT    int
	OptM    []float64
	OptV    []float64
}

// journalRecord frames one checkpoint payload: exactly one of Tile or
// Partial is set.
type journalRecord struct {
	Tile    *tileRecord
	Partial *partialRecord
}

func encodeRecord(rec journalRecord) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeRecord(p []byte) (journalRecord, error) {
	var rec journalRecord
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&rec); err != nil {
		return rec, err
	}
	if (rec.Tile == nil) == (rec.Partial == nil) {
		return rec, fmt.Errorf("record is neither a tile nor a partial")
	}
	return rec, nil
}

// appendPartial journals one mid-tile snapshot. Append is
// concurrency-safe, so snapshot records from parallel tiles interleave
// freely with completed-tile records.
func (env *runEnv) appendPartial(index, attempt int, s opt.Snapshot) {
	if !env.journalHealthy() {
		return
	}
	buf, err := encodeRecord(journalRecord{Partial: &partialRecord{
		Index: index, Attempt: attempt, Iter: s.Iter, Loss: s.Loss,
		Params: s.Params, OptT: s.OptT, OptM: s.OptM, OptV: s.OptV,
	}})
	if err == nil {
		err = env.journal.Append(buf)
	}
	if err != nil {
		env.degradeCheckpoint(fmt.Errorf("partial: %w", err))
	}
}

// configFingerprint hashes every config knob that can change a window's
// optimized output — tiling geometry, validation policy, optics, engine
// metadata, adaptive-plan knobs, and the physical pixel pitch — but no
// layout geometry. It serves two masters: it is the window dedup
// cache's key prefix (layout-free, so identical windows collide across
// layouts and runs), and it is folded into the per-(layout, tiling)
// checkpoint fingerprint below. It cannot cover the optimizer funcs
// themselves (not hashable); Config.Engines is the stand-in, so set it
// whenever a disk cache is shared across processes.
func configFingerprint(cfg Config, dxNM float64) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "grid=%d core=%d halo=%d kopt=%d retries=%d rmin=%g rmax=%g dx=%g\n",
		cfg.GridN, cfg.CorePx, cfg.HaloPx, cfg.KOpt, cfg.TileRetries, cfg.RMinPx, cfg.RMaxPx, dxNM)
	fmt.Fprintf(h, "optics=%+v\n", cfg.Optics)
	fmt.Fprintf(h, "engines=%+v\n", cfg.Engines)
	// The adaptive knobs are deliberately absent: a window's result
	// depends on its content and geometry (both in the window key), not
	// on how the plan chose to draw it, so uniform and adaptive runs
	// share cache entries. The journal fingerprint below does cover
	// them — tile indices mean different windows across plans.
	return fmt.Sprintf("cfaopc-cfg-v1 %016x", h.Sum64())
}

// fingerprint binds a checkpoint journal to one (layout, tiling) pair:
// the config fingerprint above plus the layout identity and geometry.
// Resuming with a different optimizer chain remains the caller's
// responsibility, like any cache key. v3 added per-tile cache/adaptive
// stats and the config-fingerprint split; v4 added remote-host
// provenance to TileStat — each bump makes older journals fail the
// header check instead of decoding garbage.
func fingerprint(l *layout.Layout, cfg Config) []byte {
	h := fnv.New64a()
	fmt.Fprintf(h, "cfg=%s\n", configFingerprint(cfg, float64(l.TileNM)/float64(cfg.GridN)))
	fmt.Fprintf(h, "adaptive=%v merge=%g split=%g\n",
		cfg.AdaptiveTiles, cfg.AdaptiveMergeMax, cfg.AdaptiveSplitMin)
	fmt.Fprintf(h, "layout=%s tile=%d\n", l.Name, l.TileNM)
	for _, r := range l.Rects {
		fmt.Fprintf(h, "%d,%d,%d,%d\n", r.X, r.Y, r.W, r.H)
	}
	return []byte(fmt.Sprintf("cfaopc-flow-v4 %016x", h.Sum64()))
}

// Run tiles the layout and optimizes every window. It is RunContext with
// a background context.
func Run(l *layout.Layout, cfg Config) (*Result, error) {
	return RunContext(context.Background(), l, cfg)
}

// RunContext is Run under a context: cancellation (SIGINT, deadline)
// stops the worker pool and the in-flight simulations promptly and
// returns ctx.Err(). Completed tiles are still journaled when
// checkpointing is enabled, so a canceled run resumes where it stopped.
func RunContext(ctx context.Context, l *layout.Layout, cfg Config) (*Result, error) {
	switch {
	case cfg.GridN <= 0:
		return nil, fmt.Errorf("flow: invalid grid %d", cfg.GridN)
	case cfg.CorePx <= 0 || cfg.HaloPx < 0:
		return nil, fmt.Errorf("flow: invalid core %d / halo %d", cfg.CorePx, cfg.HaloPx)
	case cfg.Optimize == nil:
		return nil, fmt.Errorf("flow: no optimizer")
	case cfg.TileRetries < 0:
		return nil, fmt.Errorf("flow: negative retries %d", cfg.TileRetries)
	case cfg.StallTimeout < 0 || cfg.PartialEvery < 0:
		return nil, fmt.Errorf("flow: negative stall timeout %s / partial interval %d", cfg.StallTimeout, cfg.PartialEvery)
	case cfg.StallTimeout > 0 && cfg.TileTimeout > 0 && cfg.StallTimeout > cfg.TileTimeout:
		return nil, fmt.Errorf("flow: stall timeout %s exceeds tile timeout %s (the wall deadline would always fire first)",
			cfg.StallTimeout, cfg.TileTimeout)
	case cfg.ProcWorkers < 0:
		return nil, fmt.Errorf("flow: negative proc workers %d", cfg.ProcWorkers)
	case cfg.ProcWorkers > 0 && cfg.WorkerCmd == nil:
		return nil, fmt.Errorf("flow: ProcWorkers set but no WorkerCmd to spawn them with")
	case cfg.ProcWorkers > 0 && cfg.Engines.Primary == "":
		return nil, fmt.Errorf("flow: ProcWorkers requires Engines metadata (the worker rebuilds the optimizer chain from it)")
	case len(cfg.RemoteHosts) > 0 && cfg.ProcWorkers > 0:
		return nil, fmt.Errorf("flow: RemoteHosts and ProcWorkers are mutually exclusive transports")
	case len(cfg.RemoteHosts) > 0 && cfg.Engines.Primary == "":
		return nil, fmt.Errorf("flow: RemoteHosts requires Engines metadata (the worker rebuilds the optimizer chain from it)")
	case cfg.AdaptiveMergeMax < 0 || cfg.AdaptiveMergeMax > 1 || cfg.AdaptiveSplitMin < 0 || cfg.AdaptiveSplitMin > 1:
		return nil, fmt.Errorf("flow: adaptive thresholds merge=%g split=%g outside [0, 1]",
			cfg.AdaptiveMergeMax, cfg.AdaptiveSplitMin)
	}
	window := cfg.CorePx + 2*cfg.HaloPx
	if window > cfg.GridN {
		return nil, fmt.Errorf("flow: window %d exceeds grid %d", window, cfg.GridN)
	}
	dx := float64(l.TileNM) / float64(cfg.GridN)

	// Optics are shift-invariant, so one kernel set serves every window
	// of a given physical size; with adaptive tiling there are a handful
	// of sizes, each binding its own (cached) kernel set.
	baseOptics := cfg.Optics
	opticsFor := func(w int) optics.Config {
		o := baseOptics
		o.TileNM = float64(w) * dx
		return o
	}

	env := &runEnv{
		cfg:       cfg.withInjectedFaults(),
		rawFaults: cfg.Faults,
		opticsFor: opticsFor,
		lay:       l,
		fp:        fingerprint(l, cfg),
		keyPrefix: configFingerprint(cfg, dx),
		fsys:      iox.OrOS(cfg.FS),
		errCh:     make(chan error, 1),
		events:    cfg.Events,
	}
	if env.events != nil {
		// Heartbeats reach the sink through the same hook a worker
		// supervisor uses, so in-process attempts and forwarded worker
		// beats look identical downstream.
		sink := env.events
		env.onBeat = func(index, iter int, loss float64) {
			sink(Event{Kind: EventBeat, Tile: index, Iter: iter, Loss: loss})
		}
	}

	// Streaming path: no full-grid raster is ever allocated. Workers
	// rasterize each window on demand from the row-bucketed span index,
	// which also feeds the occupancy scan the adaptive plan reads.
	env.ix = layout.NewWindowIndex(l, cfg.GridN)

	plan := planTiles(cfg, env.ix)
	jobs := plan.jobs
	// The full plan, kept intact for by-index lookups (band accounting of
	// journal-replayed tiles) after jobs is filtered down to the
	// remainder.
	allJobs := plan.jobs
	nTiles := len(jobs)
	outs := make([]tileOut, nTiles)
	// Prefill identity so a drained run's stats stay truthful for tiles
	// that were never dispatched.
	for _, j := range jobs {
		outs[j.index].stat = TileStat{Index: j.index, CX: j.cx, CY: j.cy, Core: j.core, Window: j.window}
	}

	var asm *bandAssembler
	if cfg.MaskWriter != nil {
		asm = newBandAssembler(cfg.GridN, cfg.CorePx, plan.perRow, cfg.RMaxPx, cfg.MaskWriter)
	}

	// Replay the checkpoint journal (if any): completed tiles drop out of
	// the job list, and the freshest partial snapshot of each unfinished
	// tile warm-starts its recomputation.
	resumed := 0
	if cfg.CheckpointPath != "" {
		var payloads [][]byte
		journal, payloads, err := checkpoint.OpenFS(cfg.FS, cfg.CheckpointPath, env.fp)
		if err != nil {
			return nil, fmt.Errorf("flow: %w", err)
		}
		defer journal.Close()
		env.journal = journal
		env.partialSink = env.appendPartial
		done := make(map[int]bool, len(payloads))
		partials := make(map[int]partialRecord)
		for _, p := range payloads {
			rec, derr := decodeRecord(p)
			if derr != nil {
				return nil, fmt.Errorf("flow: corrupt checkpoint record: %w", derr)
			}
			switch {
			case rec.Tile != nil:
				idx := rec.Tile.Stat.Index
				if idx < 0 || idx >= nTiles {
					return nil, fmt.Errorf("flow: checkpoint tile %d out of range [0, %d)", idx, nTiles)
				}
				rec.Tile.Stat.Resumed = true
				outs[idx] = tileOut{shots: rec.Tile.Shots, stat: rec.Tile.Stat}
				if !done[idx] {
					done[idx] = true
					resumed++
					// Replayed tiles complete (again) right here, before
					// any worker starts — subscribers see the full tile
					// picture on a resumed run, marked Resumed.
					env.emitTile(idx, rec.Tile.Stat)
				}
			case rec.Partial != nil:
				idx := rec.Partial.Index
				if idx < 0 || idx >= nTiles {
					return nil, fmt.Errorf("flow: checkpoint partial for tile %d out of range [0, %d)", idx, nTiles)
				}
				partials[idx] = *rec.Partial // append order: last snapshot wins
			}
		}
		for idx := range partials {
			if done[idx] {
				delete(partials, idx)
			}
		}
		if len(partials) > 0 {
			env.partials = partials
		}
		if resumed > 0 {
			// Fresh slice: allJobs aliases the plan's backing array and
			// must stay intact for by-index lookups below.
			remaining := make([]tileJob, 0, len(jobs))
			for _, j := range jobs {
				if !done[j.index] {
					remaining = append(remaining, j)
				}
			}
			jobs = remaining
		}
		// Replayed tiles count toward band completion exactly like
		// recomputed ones, so streamed bands work across resume.
		if asm != nil {
			for idx := 0; idx < nTiles; idx++ {
				if done[idx] {
					r0, r1 := plan.rowSpan(allJobs[idx])
					asm.tileDone(r0, r1, outs[idx].shots)
				}
			}
		}
	}
	procMode := cfg.ProcWorkers > 0
	remoteMode := len(cfg.RemoteHosts) > 0
	workers := tileWorkerCount(cfg.TileWorkers, len(jobs))
	if procMode {
		workers = tileWorkerCount(cfg.ProcWorkers, len(jobs))
	}
	if remoteMode {
		// One slot per host — slots are pinned to their host, so none
		// are dropped even when there are fewer jobs than hosts (the
		// extra slots simply draw nothing).
		workers = len(cfg.RemoteHosts)
	}

	// Simulators are built serially up front so a kernel error surfaces
	// before any goroutine starts: one per (tile worker, window size)
	// in-process, or a single shared per-size fallback set for
	// circuit-broken slots in proc mode (worker subprocesses build their
	// own). Skip tiles never bind a simulator, so an all-empty adaptive
	// plan builds none.
	newSim := func(w int) (*litho.Simulator, error) {
		sim, err := litho.New(opticsFor(w), w)
		if err != nil {
			// Adaptive plans derive extra window sizes; name the size so a
			// threshold-induced kernel failure is actionable.
			return nil, fmt.Errorf("flow: %dpx window simulator: %w", w, err)
		}
		sim.KOpt = cfg.KOpt
		sim.Workers = cfg.Workers
		return sim, nil
	}
	newSimSet := func() (map[int]*litho.Simulator, error) {
		set := make(map[int]*litho.Simulator, len(plan.sizes))
		for _, w := range plan.sizes {
			sim, err := newSim(w)
			if err != nil {
				return nil, err
			}
			set[w] = sim
		}
		return set, nil
	}
	var workerSims []map[int]*litho.Simulator
	if procMode || remoteMode {
		set, err := newSimSet()
		if err != nil {
			return nil, err
		}
		env.fbSims = set
	} else {
		workerSims = make([]map[int]*litho.Simulator, workers)
		for i := range workerSims {
			set, err := newSimSet()
			if err != nil {
				return nil, err
			}
			workerSims[i] = set
		}
	}

	// complete folds one finished tile into the shared run state. It is
	// the single sink both in-process workers and proc slots feed, so
	// checkpointing and band streaming behave identically in every mode.
	var completed atomic.Int64
	completed.Store(int64(resumed))
	complete := func(j tileJob, out tileOut) {
		outs[j.index] = out
		completed.Add(1)
		env.emitTile(j.index, out.stat)
		if asm != nil && ctx.Err() == nil {
			r0, r1 := plan.rowSpan(j)
			asm.tileDone(r0, r1, out.shots)
		}
		if env.journalHealthy() && ctx.Err() == nil {
			buf, err := encodeRecord(journalRecord{Tile: &tileRecord{Shots: out.shots, Stat: out.stat}})
			if err == nil {
				err = env.journal.Append(buf)
			}
			if err != nil {
				env.degradeCheckpoint(err)
			}
		}
	}

	jobCh := make(chan tileJob)
	var wg sync.WaitGroup
	switch {
	case remoteMode:
		for i, host := range cfg.RemoteHosts {
			wg.Add(1)
			go func(id int, host string) {
				defer wg.Done()
				env.runRemoteSlot(ctx, id, host, jobCh, complete)
			}(i, host)
		}
	case procMode:
		for s := 0; s < workers; s++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				env.runProcSlot(ctx, id, jobCh, complete)
			}(s)
		}
	default:
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(sims map[int]*litho.Simulator) {
				defer wg.Done()
				for j := range jobCh {
					if ctx.Err() != nil {
						continue // drain without work so the feeder never blocks
					}
					complete(j, env.runTile(ctx, sims, j))
				}
			}(workerSims[w])
		}
	}
	drained := false
feed:
	for _, j := range jobs {
		select {
		case jobCh <- j:
		case <-ctx.Done():
			break feed
		case <-cfg.Drain: // nil channel: never fires
			drained = true
			break feed
		}
	}
	close(jobCh)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case err := <-env.errCh:
		return nil, fmt.Errorf("flow: %w", err)
	default:
	}
	if asm != nil && !drained {
		// Every tile has completed, so this drains the remaining bands in
		// order and surfaces any writer error from mid-run emissions.
		if err := asm.finish(); err != nil {
			return nil, fmt.Errorf("flow: mask writer: %w", err)
		}
	}

	// Ordered reduce: row-major tile order regardless of completion order.
	res := &Result{Tiles: nTiles, TileStats: make([]TileStat, 0, nTiles), Resumed: resumed}
	for i := range outs {
		st := &outs[i].stat
		res.Shots = append(res.Shots, outs[i].shots...)
		res.TileStats = append(res.TileStats, *st)
		switch st.Path {
		case PathPrimary:
			if st.Attempts > 1 {
				res.Retried++
			}
		case PathFallback:
			res.Fallbacks++
		case PathEmpty:
			res.Empty++
		}
		if st.Stalled {
			res.Stalled++
		}
		if st.Bundle != "" {
			res.Quarantined++
		}
	}
	res.Completed = int(completed.Load())
	res.ProcCrashes = int(env.procCrashes.Load())
	res.Broken = int(env.procBroken.Load())
	res.RemoteCrashes = int(env.remoteCrashes.Load())
	res.RemoteBroken = int(env.remoteBroken.Load())
	res.CacheHits = int(env.cacheHits.Load())
	res.CacheMisses = int(env.cacheMisses.Load())
	if cfg.Cache != nil {
		res.CacheBytes = cfg.Cache.Stats().Bytes
	}
	res.Merged, res.Split, res.Skipped = plan.merged, plan.split, plan.skipped
	res.PeakBytes = estimatePeakBytes(cfg, plan.maxWindow, workers, env.ix.Bytes(), len(res.Shots))
	if s, ok := env.ckptErr.Load().(string); ok {
		res.CheckpointDegraded = true
		res.CheckpointErr = s
	}
	res.QuarantineDropped = int(env.quarDropped.Load())
	if drained {
		// Graceful shutdown: hand back the partial result for reporting,
		// but no stitched mask — the shot list is incomplete by
		// construction. The journal is synced so a resume picks up
		// exactly where the drain stopped dispatch; a sync failure
		// degrades the run like any other checkpoint fault.
		if env.journalHealthy() {
			if err := env.journal.Sync(); err != nil {
				if cfg.StrictStorage {
					return nil, fmt.Errorf("flow: %w", err)
				}
				env.degradeCheckpoint(fmt.Errorf("drain sync: %w", err))
				if s, ok := env.ckptErr.Load().(string); ok {
					res.CheckpointDegraded = true
					res.CheckpointErr = s
				}
			}
		}
		return res, ErrDrained
	}
	if cfg.KeepMask {
		res.Mask = geom.RasterizeCircles(cfg.GridN, cfg.GridN, res.Shots)
	}
	return res, nil
}

// WindowHooks observes and seeds a single-window run (RunWindow)
// without the journal/quarantine machinery of a tiled run — the knobs
// a tile-worker subprocess needs to stream liveness and resume state
// across the process boundary.
type WindowHooks struct {
	// Dispatch is published on TileInfo as the tile's redispatch
	// counter, the key process-fatal fault scripts fire on.
	Dispatch int
	// OnBeat observes every optimizer heartbeat (iteration, loss).
	OnBeat func(iter int, loss float64)
	// OnPartial receives mid-attempt snapshots every cfg.PartialEvery
	// iterations (nil, or PartialEvery <= 0, disables them).
	OnPartial func(attempt int, s opt.Snapshot)
	// Resume warm-starts attempt ResumeAttempt from a prior snapshot,
	// replaying the uninterrupted trajectory exactly.
	Resume        *opt.Snapshot
	ResumeAttempt int
}

// RunWindow runs one window's exact degradation sequence (primary →
// retries → fallback → empty) on an explicit target raster, outside any
// tiled run. cfg.Faults is honored, so a recorded script re-injects the
// same deterministic failures. The returned shots are window-local (no
// core-ownership filtering), and no checkpoint or quarantine side
// effects are performed; the stat and outcomes mirror what a live run
// would have recorded. It backs both offline bundle replay
// (cmd/replaytile) and live tile-worker subprocesses (ServeTask).
func RunWindow(ctx context.Context, sim *litho.Simulator, cfg Config, index, cx, cy int,
	target *grid.Real, hooks WindowHooks) ([]geom.Circle, TileStat, []AttemptOutcome) {
	start := time.Now()
	env := &runEnv{
		cfg:       cfg.withInjectedFaults(),
		rawFaults: cfg.Faults,
		opticsFor: func(int) optics.Config { return sim.Cfg },
		dispatch:  hooks.Dispatch,
	}
	if hooks.OnBeat != nil {
		env.onBeat = func(_, iter int, loss float64) { hooks.OnBeat(iter, loss) }
	}
	if hooks.OnPartial != nil {
		env.partialSink = func(_, attempt int, s opt.Snapshot) { hooks.OnPartial(attempt, s) }
	}
	if hooks.Resume != nil {
		r := hooks.Resume
		env.partials = map[int]partialRecord{index: {
			Index: index, Attempt: hooks.ResumeAttempt, Iter: r.Iter, Loss: r.Loss,
			Params: r.Params, OptT: r.OptT, OptM: r.OptM, OptV: r.OptV,
		}}
	}
	j := tileJob{index: index, cx: cx, cy: cy, core: cfg.CorePx, window: target.W}
	shots, path, outcomes := env.attemptSequence(ctx, sim, j, target)
	stat := TileStat{Index: index, CX: cx, CY: cy, Occupied: true, Path: path}
	applyOutcomes(&stat, outcomes)
	if path == PathPrimary || path == PathFallback {
		stat.Shots = len(shots)
	} else {
		shots = nil
	}
	stat.Wall = time.Since(start)
	return shots, stat, outcomes
}

// ReplayWindow is RunWindow with no hooks — the offline entry point
// cmd/replaytile uses on quarantine bundles.
func ReplayWindow(ctx context.Context, sim *litho.Simulator, cfg Config, index, cx, cy int,
	target *grid.Real) ([]geom.Circle, TileStat, []AttemptOutcome) {
	return RunWindow(ctx, sim, cfg, index, cx, cy, target, WindowHooks{})
}

// CompactCheckpoint rewrites cfg.CheckpointPath dropping superseded
// records: duplicate completed-tile records and every partial-progress
// snapshot that a later snapshot or the tile's completion made
// redundant. Replay semantics are last-record-wins for both kinds, so a
// resume from the compacted journal is byte-identical to a resume from
// the original — the journal is just smaller, which is what matters
// after a many-restart run over a huge chip.
func CompactCheckpoint(l *layout.Layout, cfg Config) (checkpoint.CompactStats, error) {
	if cfg.CheckpointPath == "" {
		return checkpoint.CompactStats{}, fmt.Errorf("flow: no checkpoint path to compact")
	}
	return checkpoint.CompactFS(cfg.FS, cfg.CheckpointPath, fingerprint(l, cfg), func(p []byte) (string, error) {
		rec, err := decodeRecord(p)
		if err != nil {
			return "", fmt.Errorf("flow: corrupt checkpoint record: %w", err)
		}
		if rec.Tile != nil {
			return fmt.Sprintf("tile-%d", rec.Tile.Stat.Index), nil
		}
		return fmt.Sprintf("tile-%d", rec.Partial.Index), nil
	})
}

// estimatePeakBytes adds up the flow-owned buffers documented on
// Result.PeakBytes. Per-worker window targets dominate on the streaming
// path; KeepMask reintroduces the GridN² term the streaming path exists
// to avoid.
func estimatePeakBytes(cfg Config, window, workers int, indexBytes int64, shots int) int64 {
	const f64 = 8
	peak := indexBytes
	peak += int64(workers) * int64(window) * int64(window) * f64
	if cfg.MaskWriter != nil {
		peak += int64(cfg.GridN) * int64(cfg.CorePx) * f64 // one band in flight
	}
	if cfg.KeepMask {
		peak += int64(cfg.GridN) * int64(cfg.GridN) * f64
	}
	peak += int64(shots) * 24 // geom.Circle{X, Y, R}
	return peak
}
