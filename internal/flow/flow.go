// Package flow scales CFAOPC beyond a single simulation tile: it cuts a
// large layout into overlapping windows, optimizes each window
// independently (optics are shift-invariant, so one kernel set serves
// every window), and stitches the per-window shot lists back together,
// keeping only shots whose centers fall in each window's core region.
// This is the standard halo-and-stitch deployment of tile-based ILT on
// full-chip layouts.
package flow

import (
	"fmt"

	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/optics"
)

// Optimizer produces a mask and shot list for one window target.
type Optimizer func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle)

// Config controls the tiling.
type Config struct {
	// GridN is the pixel count across the full layout.
	GridN int
	// CorePx is the core (owned) region edge of each window; shots whose
	// centers fall here are kept.
	CorePx int
	// HaloPx is the optical context margin added on every side of a core;
	// it should exceed the optical interaction range (~λ/NA ≈ 143 nm).
	HaloPx int
	// Optics is the imaging condition; TileNM is overridden per window.
	Optics optics.Config
	// KOpt truncates kernels during per-window optimization.
	KOpt int
	// Workers sets the per-window litho parallelism (see litho.Simulator).
	Workers int
	// Optimize runs on each window (e.g. a core.CircleOpt wrapper).
	Optimize Optimizer
}

// Result is the stitched output.
type Result struct {
	Mask  *grid.Real    // full-grid mask re-rasterized from the shots
	Shots []geom.Circle // full-grid shot list
	Tiles int           // number of windows optimized
}

// Run tiles the layout and optimizes every window.
func Run(l *layout.Layout, cfg Config) (*Result, error) {
	switch {
	case cfg.GridN <= 0:
		return nil, fmt.Errorf("flow: invalid grid %d", cfg.GridN)
	case cfg.CorePx <= 0 || cfg.HaloPx < 0:
		return nil, fmt.Errorf("flow: invalid core %d / halo %d", cfg.CorePx, cfg.HaloPx)
	case cfg.Optimize == nil:
		return nil, fmt.Errorf("flow: no optimizer")
	}
	window := cfg.CorePx + 2*cfg.HaloPx
	if window > cfg.GridN {
		return nil, fmt.Errorf("flow: window %d exceeds grid %d", window, cfg.GridN)
	}
	dx := float64(l.TileNM) / float64(cfg.GridN)

	// One simulator serves every window: same physical window size.
	oCfg := cfg.Optics
	oCfg.TileNM = float64(window) * dx
	sim, err := litho.New(oCfg, window)
	if err != nil {
		return nil, err
	}
	sim.KOpt = cfg.KOpt
	sim.Workers = cfg.Workers

	full := l.Rasterize(cfg.GridN)
	res := &Result{}
	for cy := 0; cy < cfg.GridN; cy += cfg.CorePx {
		for cx := 0; cx < cfg.GridN; cx += cfg.CorePx {
			// Window origin in full-grid coordinates (may go negative at
			// the borders; out-of-grid pixels are empty).
			ox := cx - cfg.HaloPx
			oy := cy - cfg.HaloPx
			target := grid.NewReal(window, window)
			occupied := false
			for y := 0; y < window; y++ {
				fy := oy + y
				if fy < 0 || fy >= cfg.GridN {
					continue
				}
				for x := 0; x < window; x++ {
					fx := ox + x
					if fx < 0 || fx >= cfg.GridN {
						continue
					}
					v := full.Data[fy*cfg.GridN+fx]
					target.Data[y*window+x] = v
					if v > 0.5 {
						occupied = true
					}
				}
			}
			res.Tiles++
			if !occupied {
				continue // nothing to optimize in this window
			}
			_, shots := cfg.Optimize(sim, target)
			for _, s := range shots {
				// Keep shots owned by this core.
				gx := s.X + float64(ox)
				gy := s.Y + float64(oy)
				if gx < float64(cx) || gx >= float64(cx+cfg.CorePx) ||
					gy < float64(cy) || gy >= float64(cy+cfg.CorePx) {
					continue
				}
				res.Shots = append(res.Shots, geom.Circle{X: gx, Y: gy, R: s.R})
			}
		}
	}
	res.Mask = geom.RasterizeCircles(cfg.GridN, cfg.GridN, res.Shots)
	return res, nil
}
