// Package flow scales CFAOPC beyond a single simulation tile: it cuts a
// large layout into overlapping windows, optimizes each window
// independently (optics are shift-invariant, so one kernel set serves
// every window), and stitches the per-window shot lists back together,
// keeping only shots whose centers fall in each window's core region.
// This is the standard halo-and-stitch deployment of tile-based ILT on
// full-chip layouts.
//
// The flow is memory-bounded end to end: window targets are rasterized
// on demand from a row-bucketed span index over the rect geometry
// (layout.WindowIndex), never from a dense full-grid raster, and the
// stitched mask is opt-in — Config.KeepMask materializes the dense
// GridN² grid, Config.MaskWriter streams it as row bands instead, and
// with neither set the shot list is the only output. Peak flow memory
// scales with the window size and worker count, not GridN²
// (Result.PeakBytes makes that observable).
//
// Windows are independent, so Run distributes them over a bounded pool of
// tile workers (Config.TileWorkers), each owning a private
// litho.Simulator. Kernel sets are shared read-only through the optics
// cache, so per-worker simulator construction is cheap. Per-tile results
// are collected into a slice indexed by row-major tile order and reduced
// in that order, so the stitched shot list and mask are bit-identical at
// any worker count — the same determinism contract litho.Simulator.Workers
// documents for per-kernel parallelism.
//
// A full-chip run is also long and partially hostile territory — one
// degenerate window must never cost the other 9,999 — so the flow carries
// a fault envelope:
//
//   - Cancellation. RunContext threads a context through the worker pool
//     and into each worker's simulator, so SIGINT or a deadline stops the
//     run within one kernel convolution and returns ctx.Err().
//   - Isolation. Each optimizer attempt runs under recover() and its
//     output is validated (no NaNs, radii in bounds, centers inside the
//     window). A bad tile is retried (Config.TileRetries), then degraded
//     to Config.Fallback, then to an empty tile — never a crashed run.
//     TileStat records the attempts, outcome path and failure mode.
//   - Restartability. With Config.CheckpointPath set, every completed
//     tile is journaled through internal/checkpoint; a rerun replays the
//     journal, skips finished tiles, and still reduces in row-major
//     order, so a resumed run's shot list and mask are bit-identical to
//     an uninterrupted one.
package flow

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
	"time"

	"cfaopc/internal/checkpoint"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/optics"
)

// Optimizer produces a mask and shot list for one window target.
type Optimizer func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle)

// Config controls the tiling.
type Config struct {
	// GridN is the pixel count across the full layout.
	GridN int
	// CorePx is the core (owned) region edge of each window; shots whose
	// centers fall here are kept.
	CorePx int
	// HaloPx is the optical context margin added on every side of a core;
	// it should exceed the optical interaction range (~λ/NA ≈ 143 nm).
	HaloPx int
	// Optics is the imaging condition; TileNM is overridden per window.
	Optics optics.Config
	// KOpt truncates kernels during per-window optimization.
	KOpt int
	// Workers sets the per-window litho parallelism (see litho.Simulator).
	Workers int
	// TileWorkers bounds the windows optimized concurrently. Zero or one
	// runs serially; negative uses GOMAXPROCS. Each worker owns a private
	// simulator and results are reduced in row-major tile order, so the
	// output is bit-identical at any worker count (assuming Optimize is
	// deterministic for a given simulator and target).
	TileWorkers int
	// Optimize runs on each window (e.g. a core.CircleOpt wrapper). It
	// must be safe to call concurrently on distinct simulators.
	Optimize Optimizer

	// TileRetries is how many extra times a failed window is re-attempted
	// with Optimize before degrading. Zero means one attempt only.
	TileRetries int
	// Fallback, when non-nil, runs once after Optimize (and its retries)
	// failed — typically a cheaper, hardier engine such as rule-based
	// fracturing of the rasterized target (CircleRule) standing in for
	// CircleOpt. If it also fails, the tile degrades to empty.
	Fallback Optimizer
	// TileTimeout bounds the wall time of a single optimizer attempt.
	// A timed-out attempt counts as a failure (and is retried / degraded
	// like one); zero disables the deadline.
	TileTimeout time.Duration
	// RMinPx / RMaxPx bound valid shot radii (in window-grid pixels) for
	// output validation; a shot outside [RMinPx, RMaxPx] fails the tile.
	// Both zero disables the radius check.
	RMinPx, RMaxPx float64
	// CheckpointPath, when non-empty, journals every completed tile
	// (shots + stat) so an interrupted run resumes instead of restarting.
	// The journal is bound to the (layout, tiling) fingerprint: reusing a
	// path across different runs is an error, not silent corruption.
	CheckpointPath string

	// KeepMask materializes Result.Mask, a dense GridN² re-rasterization
	// of the stitched shot list. The shot list is the primary output; on
	// real full-chip grids the dense mask is the memory ceiling, so it is
	// opt-in. Leave it false and set MaskWriter to stream the mask in
	// O(GridN·CorePx) bands instead.
	KeepMask bool
	// MaskWriter, when non-nil, receives the stitched mask as ordered
	// horizontal bands (one per tile row) whose concatenation is
	// byte-identical to the KeepMask dense mask. With RMaxPx set, bands
	// stream out as their contributing tile rows complete; without a
	// radius bound they are all emitted when the last tile finishes.
	MaskWriter MaskWriter
}

// Outcome paths recorded in TileStat.Path.
const (
	PathPrimary  = "primary"  // Optimize succeeded (possibly after retries)
	PathFallback = "fallback" // Optimize exhausted retries; Fallback succeeded
	PathEmpty    = "empty"    // both failed; the tile contributes no shots
)

// TileStat records what one window contributed to the stitched result.
type TileStat struct {
	Index    int           // row-major window index
	CX, CY   int           // core origin in full-grid pixels
	Occupied bool          // window held target geometry and was optimized
	Shots    int           // core-owned shots kept from this window
	Wall     time.Duration // wall time spent on this window
	// RasterWall is the slice of Wall spent rasterizing the window target
	// from the rect geometry (the streaming replacement for extracting it
	// out of a full-grid raster).
	RasterWall time.Duration

	Attempts int    // optimizer invocations (primary + fallback); 0 if unoccupied
	Path     string // outcome path: PathPrimary / PathFallback / PathEmpty ("" if unoccupied)
	Failure  string // last failure mode seen, "" when the first attempt succeeded
	Resumed  bool   // replayed from the checkpoint journal, not recomputed
}

// Result is the stitched output.
type Result struct {
	// Mask is the full-grid mask re-rasterized from the shots — nil
	// unless Config.KeepMask asked for it (streamed runs never hold a
	// dense full-grid mask).
	Mask      *grid.Real
	Shots     []geom.Circle // full-grid shot list
	Tiles     int           // number of windows optimized
	TileStats []TileStat    // per-window records in row-major order

	Retried   int // tiles that needed >1 attempt but still finished on Optimize
	Fallbacks int // tiles that degraded to the Fallback optimizer
	Empty     int // tiles degraded to empty after every optimizer failed
	Resumed   int // tiles replayed from the checkpoint journal

	// PeakBytes estimates the peak bytes of flow-owned buffers held
	// resident during the run: the layout span index, one window target
	// per tile worker, the in-flight mask band (when streaming), the
	// dense mask (when kept) and the stitched shot list. Optimizer- and
	// simulator-internal allocations are not counted; the estimate's job
	// is to make the O(window²) vs O(GridN²) scaling observable.
	PeakBytes int64
}

// tileWorkerCount resolves the effective tile parallelism.
func tileWorkerCount(w, jobs int) int {
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// extractWindow copies the window×window region at origin (ox, oy) out of
// the full rasterized layout into a fresh target grid, reporting whether
// any pixel is occupied. The origin may be negative and the window may
// extend past the grid at the borders; out-of-grid pixels stay empty.
func extractWindow(full *grid.Real, ox, oy, window int) (*grid.Real, bool) {
	target := grid.NewReal(window, window)
	occupied := false
	for y := 0; y < window; y++ {
		fy := oy + y
		if fy < 0 || fy >= full.H {
			continue
		}
		for x := 0; x < window; x++ {
			fx := ox + x
			if fx < 0 || fx >= full.W {
				continue
			}
			v := full.Data[fy*full.W+fx]
			target.Data[y*window+x] = v
			if v > 0.5 {
				occupied = true
			}
		}
	}
	return target, occupied
}

// ownedShots translates window-local shots to full-grid coordinates and
// keeps those whose centers fall in the core [cx, cx+corePx) × [cy,
// cy+corePx) — the ownership rule that makes seam shots unique.
func ownedShots(shots []geom.Circle, ox, oy, cx, cy, corePx int) []geom.Circle {
	var kept []geom.Circle
	for _, s := range shots {
		gx := s.X + float64(ox)
		gy := s.Y + float64(oy)
		if gx < float64(cx) || gx >= float64(cx+corePx) ||
			gy < float64(cy) || gy >= float64(cy+corePx) {
			continue
		}
		kept = append(kept, geom.Circle{X: gx, Y: gy, R: s.R})
	}
	return kept
}

// tileJob identifies one window by its row-major index and core origin.
type tileJob struct {
	index  int
	cx, cy int
}

// tileOut is one window's contribution before the ordered reduce.
type tileOut struct {
	shots []geom.Circle
	stat  TileStat
}

// validateTile rejects optimizer output that would poison the stitched
// result: NaN/Inf masks, non-finite shots, radii outside [RMinPx, RMaxPx]
// and centers outside the window. Coordinates here are window-local.
func validateTile(mask *grid.Real, shots []geom.Circle, cfg Config, window int) error {
	if mask != nil {
		if mask.W != window || mask.H != window {
			return fmt.Errorf("mask %dx%d, window %d", mask.W, mask.H, window)
		}
		if mask.HasNaN() {
			return fmt.Errorf("mask has NaN/Inf pixels")
		}
	}
	const eps = 1e-9
	for i, s := range shots {
		if !finite(s.X) || !finite(s.Y) || !finite(s.R) {
			return fmt.Errorf("shot %d not finite: %+v", i, s)
		}
		if s.X < 0 || s.X > float64(window) || s.Y < 0 || s.Y > float64(window) {
			return fmt.Errorf("shot %d center (%g, %g) outside window %d", i, s.X, s.Y, window)
		}
		if cfg.RMinPx > 0 || cfg.RMaxPx > 0 {
			if s.R < cfg.RMinPx-eps || s.R > cfg.RMaxPx+eps {
				return fmt.Errorf("shot %d radius %g outside [%g, %g]", i, s.R, cfg.RMinPx, cfg.RMaxPx)
			}
		}
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// attemptTile runs one optimizer invocation in isolation: a panic or
// invalid output becomes an error, a per-attempt deadline is enforced
// through the simulator's cooperative context, and the tile's identity
// is published on that context for fault-injection harnesses.
func attemptTile(ctx context.Context, sim *litho.Simulator, opt Optimizer, target *grid.Real,
	cfg Config, j tileJob, attempt int, window int) (shots []geom.Circle, err error) {
	tctx := ctx
	if cfg.TileTimeout > 0 {
		var cancel context.CancelFunc
		tctx, cancel = context.WithTimeout(ctx, cfg.TileTimeout)
		defer cancel()
	}
	tctx = context.WithValue(tctx, tileInfoKey{}, TileInfo{
		Index: j.index, Attempt: attempt, CX: j.cx, CY: j.cy,
	})
	sim.Ctx = tctx
	defer func() {
		sim.Ctx = nil
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	mask, shots := opt(sim, target)
	if cerr := tctx.Err(); cerr != nil {
		// Canceled or timed out mid-attempt: the output is untrusted.
		return nil, cerr
	}
	if verr := validateTile(mask, shots, cfg, window); verr != nil {
		return nil, fmt.Errorf("invalid output: %w", verr)
	}
	return shots, nil
}

// runTile rasterizes, optimizes and filters one window, degrading
// through retry → fallback → empty instead of failing the run. The
// window target is rasterized on demand from the layout's span index —
// the streaming path; no full-grid raster exists anywhere. When ctx is
// canceled the tile is abandoned (stat.Path stays empty); Run turns that
// into ctx.Err() for the whole run.
func runTile(ctx context.Context, sim *litho.Simulator, ix *layout.WindowIndex, cfg Config, j tileJob, window int) tileOut {
	start := time.Now()
	ox := j.cx - cfg.HaloPx
	oy := j.cy - cfg.HaloPx
	target, occupied := ix.Window(ox, oy, window, window)
	out := tileOut{stat: TileStat{Index: j.index, CX: j.cx, CY: j.cy, Occupied: occupied, RasterWall: time.Since(start)}}
	defer func() { out.stat.Wall = time.Since(start) }()
	if !occupied {
		return out
	}

	keep := func(shots []geom.Circle, path string) tileOut {
		out.shots = ownedShots(shots, ox, oy, j.cx, j.cy, cfg.CorePx)
		out.stat.Shots = len(out.shots)
		out.stat.Path = path
		return out
	}

	for attempt := 0; attempt <= cfg.TileRetries; attempt++ {
		if ctx.Err() != nil {
			return out // run canceled: abandon, don't degrade
		}
		out.stat.Attempts++
		shots, err := attemptTile(ctx, sim, cfg.Optimize, target, cfg, j, attempt, window)
		if err == nil {
			return keep(shots, PathPrimary)
		}
		out.stat.Failure = err.Error()
		if ctx.Err() != nil {
			return out
		}
	}
	if cfg.Fallback != nil {
		out.stat.Attempts++
		shots, err := attemptTile(ctx, sim, cfg.Fallback, target, cfg, j, cfg.TileRetries+1, window)
		if err == nil {
			return keep(shots, PathFallback)
		}
		out.stat.Failure = err.Error()
		if ctx.Err() != nil {
			return out
		}
	}
	// Graceful floor: the window contributes nothing, the run survives.
	out.stat.Path = PathEmpty
	return out
}

// tileRecord is the gob payload journaled per completed tile.
type tileRecord struct {
	Shots []geom.Circle
	Stat  TileStat
}

// fingerprint binds a checkpoint journal to one (layout, tiling) pair.
// It covers everything that determines per-tile output except the
// optimizer itself (a func is not hashable); resuming with a different
// optimizer is the caller's responsibility, like any cache key.
func fingerprint(l *layout.Layout, cfg Config) []byte {
	h := fnv.New64a()
	fmt.Fprintf(h, "grid=%d core=%d halo=%d kopt=%d retries=%d rmin=%g rmax=%g\n",
		cfg.GridN, cfg.CorePx, cfg.HaloPx, cfg.KOpt, cfg.TileRetries, cfg.RMinPx, cfg.RMaxPx)
	fmt.Fprintf(h, "optics=%+v\n", cfg.Optics)
	fmt.Fprintf(h, "layout=%s tile=%d\n", l.Name, l.TileNM)
	for _, r := range l.Rects {
		fmt.Fprintf(h, "%d,%d,%d,%d\n", r.X, r.Y, r.W, r.H)
	}
	return []byte(fmt.Sprintf("cfaopc-flow-v1 %016x", h.Sum64()))
}

// Run tiles the layout and optimizes every window. It is RunContext with
// a background context.
func Run(l *layout.Layout, cfg Config) (*Result, error) {
	return RunContext(context.Background(), l, cfg)
}

// RunContext is Run under a context: cancellation (SIGINT, deadline)
// stops the worker pool and the in-flight simulations promptly and
// returns ctx.Err(). Completed tiles are still journaled when
// checkpointing is enabled, so a canceled run resumes where it stopped.
func RunContext(ctx context.Context, l *layout.Layout, cfg Config) (*Result, error) {
	switch {
	case cfg.GridN <= 0:
		return nil, fmt.Errorf("flow: invalid grid %d", cfg.GridN)
	case cfg.CorePx <= 0 || cfg.HaloPx < 0:
		return nil, fmt.Errorf("flow: invalid core %d / halo %d", cfg.CorePx, cfg.HaloPx)
	case cfg.Optimize == nil:
		return nil, fmt.Errorf("flow: no optimizer")
	case cfg.TileRetries < 0:
		return nil, fmt.Errorf("flow: negative retries %d", cfg.TileRetries)
	}
	window := cfg.CorePx + 2*cfg.HaloPx
	if window > cfg.GridN {
		return nil, fmt.Errorf("flow: window %d exceeds grid %d", window, cfg.GridN)
	}
	dx := float64(l.TileNM) / float64(cfg.GridN)

	// Every window has the same physical size, so every worker simulator
	// binds the same (cached) kernel sets.
	oCfg := cfg.Optics
	oCfg.TileNM = float64(window) * dx

	var jobs []tileJob
	for cy := 0; cy < cfg.GridN; cy += cfg.CorePx {
		for cx := 0; cx < cfg.GridN; cx += cfg.CorePx {
			jobs = append(jobs, tileJob{index: len(jobs), cx: cx, cy: cy})
		}
	}
	nTiles := len(jobs)
	cols := (cfg.GridN + cfg.CorePx - 1) / cfg.CorePx
	rows := nTiles / cols
	outs := make([]tileOut, nTiles)

	var asm *bandAssembler
	if cfg.MaskWriter != nil {
		asm = newBandAssembler(cfg.GridN, cfg.CorePx, rows, cols, cfg.RMaxPx, cfg.MaskWriter)
	}

	// Replay the checkpoint journal (if any) and drop finished tiles from
	// the job list before sizing the pool.
	var journal *checkpoint.Journal
	resumed := 0
	if cfg.CheckpointPath != "" {
		var payloads [][]byte
		var err error
		journal, payloads, err = checkpoint.Open(cfg.CheckpointPath, fingerprint(l, cfg))
		if err != nil {
			return nil, fmt.Errorf("flow: %w", err)
		}
		defer journal.Close()
		done := make(map[int]bool, len(payloads))
		for _, p := range payloads {
			var rec tileRecord
			if derr := gob.NewDecoder(bytes.NewReader(p)).Decode(&rec); derr != nil {
				return nil, fmt.Errorf("flow: corrupt checkpoint record: %w", derr)
			}
			idx := rec.Stat.Index
			if idx < 0 || idx >= nTiles {
				return nil, fmt.Errorf("flow: checkpoint tile %d out of range [0, %d)", idx, nTiles)
			}
			rec.Stat.Resumed = true
			outs[idx] = tileOut{shots: rec.Shots, stat: rec.Stat}
			if !done[idx] {
				done[idx] = true
				resumed++
			}
		}
		if resumed > 0 {
			remaining := jobs[:0]
			for _, j := range jobs {
				if !done[j.index] {
					remaining = append(remaining, j)
				}
			}
			jobs = remaining
		}
		// Replayed tiles count toward band completion exactly like
		// recomputed ones, so streamed bands work across resume.
		if asm != nil {
			for idx := 0; idx < nTiles; idx++ {
				if done[idx] {
					asm.tileDone(idx/cols, outs[idx].shots)
				}
			}
		}
	}
	workers := tileWorkerCount(cfg.TileWorkers, len(jobs))

	// Per-worker simulators are built serially up front so a kernel error
	// surfaces before any goroutine starts.
	sims := make([]*litho.Simulator, workers)
	for i := range sims {
		sim, err := litho.New(oCfg, window)
		if err != nil {
			return nil, err
		}
		sim.KOpt = cfg.KOpt
		sim.Workers = cfg.Workers
		sims[i] = sim
	}

	// Streaming path: no full-grid raster is ever allocated. Workers
	// rasterize each window on demand from the row-bucketed span index.
	ix := layout.NewWindowIndex(l, cfg.GridN)
	jobCh := make(chan tileJob)
	journalErr := make(chan error, 1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(sim *litho.Simulator) {
			defer wg.Done()
			for j := range jobCh {
				if ctx.Err() != nil {
					continue // drain without work so the feeder never blocks
				}
				out := runTile(ctx, sim, ix, cfg, j, window)
				outs[j.index] = out
				if asm != nil && ctx.Err() == nil {
					asm.tileDone(j.index/cols, out.shots)
				}
				if journal != nil && ctx.Err() == nil {
					var buf bytes.Buffer
					err := gob.NewEncoder(&buf).Encode(tileRecord{Shots: out.shots, Stat: out.stat})
					if err == nil {
						err = journal.Append(buf.Bytes())
					}
					if err != nil {
						select {
						case journalErr <- err:
						default:
						}
					}
				}
			}
		}(sims[w])
	}
feed:
	for _, j := range jobs {
		select {
		case jobCh <- j:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobCh)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case err := <-journalErr:
		return nil, fmt.Errorf("flow: checkpoint append: %w", err)
	default:
	}
	if asm != nil {
		// Every tile has completed, so this drains the remaining bands in
		// order and surfaces any writer error from mid-run emissions.
		if err := asm.finish(); err != nil {
			return nil, fmt.Errorf("flow: mask writer: %w", err)
		}
	}

	// Ordered reduce: row-major tile order regardless of completion order.
	res := &Result{Tiles: nTiles, TileStats: make([]TileStat, 0, nTiles), Resumed: resumed}
	for i := range outs {
		st := &outs[i].stat
		res.Shots = append(res.Shots, outs[i].shots...)
		res.TileStats = append(res.TileStats, *st)
		switch st.Path {
		case PathPrimary:
			if st.Attempts > 1 {
				res.Retried++
			}
		case PathFallback:
			res.Fallbacks++
		case PathEmpty:
			res.Empty++
		}
	}
	if cfg.KeepMask {
		res.Mask = geom.RasterizeCircles(cfg.GridN, cfg.GridN, res.Shots)
	}
	res.PeakBytes = estimatePeakBytes(cfg, window, workers, ix.Bytes(), len(res.Shots))
	return res, nil
}

// estimatePeakBytes adds up the flow-owned buffers documented on
// Result.PeakBytes. Per-worker window targets dominate on the streaming
// path; KeepMask reintroduces the GridN² term the streaming path exists
// to avoid.
func estimatePeakBytes(cfg Config, window, workers int, indexBytes int64, shots int) int64 {
	const f64 = 8
	peak := indexBytes
	peak += int64(workers) * int64(window) * int64(window) * f64
	if cfg.MaskWriter != nil {
		peak += int64(cfg.GridN) * int64(cfg.CorePx) * f64 // one band in flight
	}
	if cfg.KeepMask {
		peak += int64(cfg.GridN) * int64(cfg.GridN) * f64
	}
	peak += int64(shots) * 24 // geom.Circle{X, Y, R}
	return peak
}
