package flow

import (
	"fmt"
	"testing"

	"cfaopc/internal/fracture"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/optics"
)

// fixedRuleOptimizer is a deterministic, simulator-independent engine for
// the equivalence tests: rule-based circle fracturing at a fixed pixel
// scale. Because it ignores the simulator, the reference path below can
// invoke it without building one.
func fixedRuleOptimizer(dx float64) Optimizer {
	return func(_ *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
		shots := fracture.CircleRule(target, fracture.DefaultCircleRuleConfig(dx))
		return geom.RasterizeCircles(target.W, target.H, shots), shots
	}
}

// referenceFullGridRun replays the pre-streaming flow exactly: rasterize
// the entire chip, extract every halo window out of the dense grid,
// optimize, and keep core-owned shots in row-major order. It is the
// oracle the streaming path must match byte for byte.
func referenceFullGridRun(l *layout.Layout, cfg Config) ([]geom.Circle, *grid.Real) {
	full := l.Rasterize(cfg.GridN)
	window := cfg.CorePx + 2*cfg.HaloPx
	var shots []geom.Circle
	for cy := 0; cy < cfg.GridN; cy += cfg.CorePx {
		for cx := 0; cx < cfg.GridN; cx += cfg.CorePx {
			ox, oy := cx-cfg.HaloPx, cy-cfg.HaloPx
			target, occupied := extractWindow(full, ox, oy, window)
			if !occupied {
				continue
			}
			_, ws := cfg.Optimize(nil, target)
			shots = append(shots, ownedShots(ws, ox, oy, cx, cy, cfg.CorePx)...)
		}
	}
	return shots, geom.RasterizeCircles(cfg.GridN, cfg.GridN, shots)
}

// TestStreamingEquivalenceFullGrid is the acceptance property of the
// streaming refactor: over randomized layouts, even and uneven tilings,
// bounded and unbounded shot radii, and TileWorkers ∈ {1, 8}, the
// streamed flow's shots, dense mask and band-assembled mask are all
// byte-identical to the full-grid reference. Run it under -race: band
// emission happens concurrently with tile workers.
func TestStreamingEquivalenceFullGrid(t *testing.T) {
	cases := []struct {
		name   string
		seed   int64
		gridN  int
		corePx int
		haloPx int
		rMaxPx float64 // > 0 streams bands mid-run; 0 defers to finish
	}{
		{name: "even 2x2", seed: 1, gridN: 128, corePx: 64, haloPx: 8, rMaxPx: 0},
		{name: "uneven 3x3 bounded", seed: 2, gridN: 256, corePx: 96, haloPx: 16, rMaxPx: 40},
		{name: "many tiles bounded", seed: 3, gridN: 256, corePx: 32, haloPx: 8, rMaxPx: 20},
		{name: "single core column", seed: 4, gridN: 160, corePx: 150, haloPx: 5, rMaxPx: 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			l := layout.GenerateRandom(tc.seed, layout.RandomConfig{
				TileNM: 2048, Features: 7, MarginNM: 128,
			})
			dx := float64(l.TileNM) / float64(tc.gridN)
			mk := func(workers int, w MaskWriter) Config {
				return Config{
					GridN:       tc.gridN,
					CorePx:      tc.corePx,
					HaloPx:      tc.haloPx,
					Optics:      optics.Default(),
					KOpt:        2,
					TileWorkers: workers,
					Optimize:    fixedRuleOptimizer(dx),
					RMaxPx:      tc.rMaxPx,
					KeepMask:    true,
					MaskWriter:  w,
				}
			}
			wantShots, wantMask := referenceFullGridRun(l, mk(1, nil))
			if len(wantShots) == 0 {
				t.Fatal("reference run produced no shots")
			}
			for _, workers := range []int{1, 8} {
				coll := NewMaskCollector(tc.gridN)
				res, err := Run(l, mk(workers, coll))
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Shots) != len(wantShots) {
					t.Fatalf("workers=%d: %d shots vs reference %d", workers, len(res.Shots), len(wantShots))
				}
				for i := range res.Shots {
					if res.Shots[i] != wantShots[i] {
						t.Fatalf("workers=%d: shot %d = %+v, reference %+v", workers, i, res.Shots[i], wantShots[i])
					}
				}
				if res.Mask.SqDiff(wantMask) != 0 {
					t.Fatalf("workers=%d: dense mask differs from full-grid reference", workers)
				}
				if coll.Mask.SqDiff(wantMask) != 0 {
					t.Fatalf("workers=%d: band-assembled mask differs from full-grid reference", workers)
				}
				if res.PeakBytes <= 0 {
					t.Fatalf("workers=%d: PeakBytes = %d", workers, res.PeakBytes)
				}
			}
		})
	}
}

// TestStreamingDropsDenseMask pins the memory contract: without
// KeepMask the result holds no dense grid, and the peak estimate scales
// with the window, not the chip.
func TestStreamingDropsDenseMask(t *testing.T) {
	l := layout.GenerateRandom(5, layout.RandomConfig{Features: 6, MarginNM: 128})
	const gridN = 512
	cfg := Config{
		GridN:    gridN,
		CorePx:   64,
		HaloPx:   16,
		Optics:   optics.Default(),
		KOpt:     2,
		Optimize: fixedRuleOptimizer(float64(l.TileNM) / gridN),
	}
	res, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mask != nil {
		t.Fatal("streamed run materialized a dense mask")
	}
	if len(res.Shots) == 0 {
		t.Fatal("no shots")
	}
	denseBytes := int64(gridN) * int64(gridN) * 8
	if res.PeakBytes >= denseBytes {
		t.Fatalf("peak %d bytes not below the dense-grid bar %d", res.PeakBytes, denseBytes)
	}
	for _, ts := range res.TileStats {
		if ts.Occupied && ts.RasterWall < 0 {
			t.Fatalf("tile %d negative raster wall", ts.Index)
		}
	}
	cfg.KeepMask = true
	kept, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if kept.Mask == nil {
		t.Fatal("KeepMask run did not materialize the mask")
	}
	if kept.PeakBytes <= res.PeakBytes+denseBytes-1 {
		t.Fatalf("KeepMask peak %d does not carry the dense-grid term over streamed peak %d", kept.PeakBytes, res.PeakBytes)
	}
}

// failingWriter rejects every band, to prove writer errors surface as
// run errors instead of vanishing in a worker goroutine.
type failingWriter struct{}

func (failingWriter) WriteBand(int, *grid.Real) error { return fmt.Errorf("disk full") }

func TestMaskWriterErrorSurfaces(t *testing.T) {
	l := bigLayout()
	cfg := testConfig()
	cfg.Optimize = fixedRuleOptimizer(float64(l.TileNM) / float64(cfg.GridN))
	cfg.MaskWriter = failingWriter{}
	if _, err := Run(l, cfg); err == nil {
		t.Fatal("writer error did not fail the run")
	}
}

// TestBandAssemblerOrderAndReach drives the assembler directly:
// completions arrive in adversarial order, bands must come out
// top-to-bottom exactly once, and with a radius bound the early bands
// must be emitted before the bottom rows complete.
func TestBandAssemblerOrderAndReach(t *testing.T) {
	const gridN, corePx, rows, cols = 96, 24, 4, 4
	shotFor := func(row, col int) geom.Circle {
		return geom.Circle{X: float64(col*corePx + 10), Y: float64(row*corePx + 10), R: 6}
	}
	var all []geom.Circle
	type band struct {
		y0   int
		grid *grid.Real
	}
	var got []band
	rec := writerFunc(func(y0 int, g *grid.Real) error {
		got = append(got, band{y0, g.Clone()})
		return nil
	})
	perRow := make([]int, rows)
	for r := range perRow {
		perRow[r] = cols
	}
	a := newBandAssembler(gridN, corePx, perRow, 6, rec)
	// Rows 0-2 complete (out of order) in the first 12 completions; row 3
	// stays outstanding. Reach is int(6/24)+2 = 2 tile rows, so band 0
	// (needing rows 0..2) must stream out before row 3 finishes.
	order := []struct{ row, col int }{
		{2, 2}, {0, 0}, {1, 3}, {0, 1}, {2, 0}, {0, 2}, {1, 0}, {2, 1},
		{0, 3}, {1, 1}, {2, 3}, {1, 2}, {3, 0}, {3, 1}, {3, 2},
	}
	for i, o := range order {
		s := shotFor(o.row, o.col)
		all = append(all, s)
		a.tileDone(o.row, o.row, []geom.Circle{s})
		if i == 11 && len(got) == 0 {
			t.Fatal("no band emitted although rows 0-2 completed under a radius bound")
		}
	}
	a.tileDone(3, 3, []geom.Circle{shotFor(3, 3)})
	all = append(all, shotFor(3, 3))
	if err := a.finish(); err != nil {
		t.Fatal(err)
	}
	if len(got) != rows {
		t.Fatalf("%d bands, want %d", len(got), rows)
	}
	want := geom.RasterizeCircles(gridN, gridN, all)
	for i, b := range got {
		if b.y0 != i*corePx {
			t.Fatalf("band %d at y0=%d, want %d", i, b.y0, i*corePx)
		}
		for y := 0; y < b.grid.H; y++ {
			for x := 0; x < gridN; x++ {
				if b.grid.At(x, y) != want.At(x, b.y0+y) {
					t.Fatalf("band %d pixel (%d, %d) differs from dense rasterization", i, x, y)
				}
			}
		}
	}
}

// writerFunc adapts a function to MaskWriter.
type writerFunc func(int, *grid.Real) error

func (f writerFunc) WriteBand(y0 int, g *grid.Real) error { return f(y0, g) }

// TestMaskCollectorBounds rejects bands that fall outside the mask.
func TestMaskCollectorBounds(t *testing.T) {
	c := NewMaskCollector(32)
	if err := c.WriteBand(0, grid.NewReal(32, 8)); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteBand(28, grid.NewReal(32, 8)); err == nil {
		t.Fatal("overhanging band accepted")
	}
	if err := c.WriteBand(8, grid.NewReal(16, 8)); err == nil {
		t.Fatal("narrow band accepted")
	}
}
