package flow

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/quarantine"
	"cfaopc/internal/wcache"
)

// arrayLayout is the repeated-cell workload the dedup cache exists for:
// an 8×8 array whose pitch (1024/8 = 128 nm = 32 px at GridN 256) equals
// cacheConfig's CorePx, and whose default motif keeps a margin ≥ the
// halo — so all 64 windows are pixel-identical and share one cache key.
func arrayLayout() *layout.Layout {
	return layout.GenerateArray(8, 8, layout.ArrayConfig{TileNM: 1024})
}

const arrayCells = 64

// cacheConfig tiles the array layout cell-per-core with the cheap
// deterministic rule engine, so cache equivalence — not engine quality —
// is what the tests measure.
func cacheConfig() Config {
	cfg := testConfig()
	cfg.CorePx = 32
	cfg.HaloPx = 8
	cfg.Optimize = ruleFallback()
	return cfg
}

func mustCache(t *testing.T, cfg wcache.Config) *wcache.Cache {
	t.Helper()
	c, err := wcache.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCacheDeterminism is the issue's acceptance contract: over a
// repeated-cell array, runs with the cache on — cold, warm, parallel,
// proc-mode, and cross-process through the disk tier — produce shots,
// stats, and streamed bands byte-identical to the uncached serial
// reference, while serving all but the first twin from the cache.
func TestCacheDeterminism(t *testing.T) {
	l := arrayLayout()
	mk := func(w MaskWriter) Config {
		cfg := cacheConfig()
		cfg.MaskWriter = w
		return cfg
	}

	refColl := NewMaskCollector(testConfig().GridN)
	refCfg := mk(refColl)
	refCfg.TileWorkers = 1
	ref, err := Run(l, refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Shots) == 0 {
		t.Fatal("reference run produced no shots")
	}
	if ref.CacheHits != 0 || ref.CacheMisses != 0 || ref.CacheBytes != 0 {
		t.Fatalf("uncached reference recorded cache activity: %+v", ref)
	}
	for i, st := range ref.TileStats {
		if !st.Occupied {
			t.Fatalf("array tile %d unoccupied; the layout should fill every window", i)
		}
	}

	check := func(t *testing.T, res *Result, coll *MaskCollector) {
		t.Helper()
		sameResult(t, res, ref)
		if coll.Mask.SqDiff(refColl.Mask) != 0 {
			t.Fatal("streamed bands differ from the uncached reference's")
		}
	}

	t.Run("serial-cold-then-warm", func(t *testing.T) {
		cache := mustCache(t, wcache.Config{})
		coll := NewMaskCollector(testConfig().GridN)
		cfg := mk(coll)
		cfg.TileWorkers = 1
		cfg.Cache = cache
		cold, err := Run(l, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Serial cold run: tile 0 misses and stores, every twin hits —
		// the ≥ R·C−1 dedup the issue demands, inside a single cold run.
		if cold.CacheHits != arrayCells-1 || cold.CacheMisses != 1 {
			t.Fatalf("cold run hits=%d misses=%d, want %d/1", cold.CacheHits, cold.CacheMisses, arrayCells-1)
		}
		if cold.CacheBytes <= 0 {
			t.Fatalf("cold run CacheBytes = %d", cold.CacheBytes)
		}
		hit := 0
		for _, st := range cold.TileStats {
			if st.CacheKey == "" {
				t.Fatalf("tile %d has no cache key", st.Index)
			}
			if st.CacheHit {
				hit++
			}
		}
		if hit != arrayCells-1 {
			t.Fatalf("%d tiles marked CacheHit, want %d", hit, arrayCells-1)
		}
		check(t, cold, coll)

		coll = NewMaskCollector(testConfig().GridN)
		cfg = mk(coll)
		cfg.TileWorkers = 1
		cfg.Cache = cache
		warm, err := Run(l, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if warm.CacheHits != arrayCells || warm.CacheMisses != 0 {
			t.Fatalf("warm run hits=%d misses=%d, want %d/0", warm.CacheHits, warm.CacheMisses, arrayCells)
		}
		check(t, warm, coll)
	})

	t.Run("parallel-cold", func(t *testing.T) {
		const workers = 8
		coll := NewMaskCollector(testConfig().GridN)
		cfg := mk(coll)
		cfg.TileWorkers = workers
		cfg.Cache = mustCache(t, wcache.Config{})
		res, err := Run(l, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// At most the tiles in flight before the first store can miss.
		if res.CacheHits+res.CacheMisses != arrayCells {
			t.Fatalf("hits %d + misses %d != %d tiles", res.CacheHits, res.CacheMisses, arrayCells)
		}
		if res.CacheHits < arrayCells-workers {
			t.Fatalf("parallel cold run hit only %d of %d tiles", res.CacheHits, arrayCells)
		}
		check(t, res, coll)
	})

	t.Run("proc-workers", func(t *testing.T) {
		const procs = 4
		coll := NewMaskCollector(testConfig().GridN)
		cfg := mk(coll)
		cfg.Fallback = ruleFallback()
		cfg.Engines = quarantine.EngineMeta{Primary: "rule", Fallback: "rule"}
		cfg.ProcWorkers = procs
		cfg.WorkerCmd = testWorkerCmd(t)
		cfg.Cache = mustCache(t, wcache.Config{})
		res, err := Run(l, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHits+res.CacheMisses != arrayCells {
			t.Fatalf("hits %d + misses %d != %d tiles", res.CacheHits, res.CacheMisses, arrayCells)
		}
		if res.CacheHits < arrayCells-procs {
			t.Fatalf("proc cold run hit only %d of %d tiles", res.CacheHits, arrayCells)
		}
		check(t, res, coll)
	})

	t.Run("disk-cross-process", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "wcache")
		first := mustCache(t, wcache.Config{Dir: dir})
		coll := NewMaskCollector(testConfig().GridN)
		cfg := mk(coll)
		cfg.TileWorkers = 1
		cfg.Cache = first
		if _, err := Run(l, cfg); err != nil {
			t.Fatal(err)
		}
		if s := first.Stats(); s.Puts != 1 || s.DiskErrs != 0 {
			t.Fatalf("first process cache stats: %+v", s)
		}

		// A fresh Cache over the same directory models a new process:
		// the single entry is promoted from disk, then memory serves the
		// remaining 63 twins.
		second := mustCache(t, wcache.Config{Dir: dir})
		coll = NewMaskCollector(testConfig().GridN)
		cfg = mk(coll)
		cfg.TileWorkers = 1
		cfg.Cache = second
		res, err := Run(l, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHits != arrayCells || res.CacheMisses != 0 {
			t.Fatalf("disk-warm run hits=%d misses=%d, want %d/0", res.CacheHits, res.CacheMisses, arrayCells)
		}
		if s := second.Stats(); s.DiskHits != 1 || s.BadDisk != 0 {
			t.Fatalf("second process cache stats: %+v", s)
		}
		check(t, res, coll)
	})
}

// TestCacheMatrix is the CI cache-matrix entry point: cache mode and
// proc-worker count come from the environment (one cell per CI job, each
// under -race), or every cell runs when the variables are unset:
//
//	WCACHE=off|mem|disk (default all)
//	WCACHE_PROC_WORKERS=N (default runs 0 and 4)
func TestCacheMatrix(t *testing.T) {
	modes := []string{"off", "mem", "disk"}
	if v := os.Getenv("WCACHE"); v != "" && v != "all" {
		modes = []string{v}
	}
	procs := []int{0, 4}
	if v := os.Getenv("WCACHE_PROC_WORKERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			t.Fatalf("WCACHE_PROC_WORKERS = %q", v)
		}
		procs = []int{n}
	}

	l := arrayLayout()
	refCfg := cacheConfig()
	refCfg.TileWorkers = 1
	ref, err := Run(l, refCfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range modes {
		for _, pw := range procs {
			t.Run(mode+"/procworkers="+strconv.Itoa(pw), func(t *testing.T) {
				mk := func() Config {
					cfg := cacheConfig()
					if pw > 0 {
						cfg.Fallback = ruleFallback()
						cfg.Engines = quarantine.EngineMeta{Primary: "rule", Fallback: "rule"}
						cfg.ProcWorkers = pw
						cfg.WorkerCmd = testWorkerCmd(t)
					} else {
						cfg.TileWorkers = 4
					}
					return cfg
				}
				var cache *wcache.Cache
				switch mode {
				case "mem":
					cache = mustCache(t, wcache.Config{})
				case "disk":
					cache = mustCache(t, wcache.Config{Dir: filepath.Join(t.TempDir(), "wcache")})
				}
				cfg := mk()
				cfg.Cache = cache
				cold, err := Run(l, cfg)
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, cold, ref)
				if mode == "off" {
					if cold.CacheHits != 0 || cold.CacheMisses != 0 {
						t.Fatalf("cache-off run recorded activity: %+v", cold)
					}
					return
				}
				if cold.CacheHits == 0 {
					t.Fatal("cold cached run recorded no hits over a repeated-cell array")
				}
				cfg = mk()
				cfg.Cache = cache
				warm, err := Run(l, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if warm.CacheHits != arrayCells || warm.CacheMisses != 0 {
					t.Fatalf("warm run hits=%d misses=%d, want %d/0", warm.CacheHits, warm.CacheMisses, arrayCells)
				}
				sameResult(t, warm, ref)
			})
		}
	}
}

// TestCacheFaultDeterminismAndResume covers the cache × fault-envelope
// interplay: a tile with an injected fault script bypasses the cache in
// both directions even when its twins were cache-served, an interrupted
// cached run resumes through its checkpoint journal against a warm disk
// cache, and every variant stays byte-identical to the uncached faulted
// reference.
func TestCacheFaultDeterminismAndResume(t *testing.T) {
	l := arrayLayout()
	plan := FaultPlan{5: {{Panic: true}}} // tiles 1..4: cache-served twins; tile 5: faulted
	mk := func(w MaskWriter) Config {
		cfg := cacheConfig()
		cfg.TileRetries = 1
		cfg.TileWorkers = 1
		cfg.Faults = plan
		cfg.MaskWriter = w
		return cfg
	}

	refColl := NewMaskCollector(testConfig().GridN)
	ref, err := Run(l, mk(refColl))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Retried != 1 {
		t.Fatalf("reference summary: %+v", ref)
	}

	// Faulted tile among cached twins: 0 misses and stores, 1-4 (and
	// 6-63) hit, 5 re-optimizes outside the cache.
	dir := filepath.Join(t.TempDir(), "wcache")
	coll := NewMaskCollector(testConfig().GridN)
	cfg := mk(coll)
	cfg.Cache = mustCache(t, wcache.Config{Dir: dir})
	res, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != arrayCells-2 || res.CacheMisses != 1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", res.CacheHits, res.CacheMisses, arrayCells-2)
	}
	if st := res.TileStats[5]; st.CacheKey != "" || st.CacheHit || st.Attempts != 2 || st.Path != PathPrimary {
		t.Fatalf("faulted tile stat: %+v, want a cache-bypassed retried primary", st)
	}
	if st := res.TileStats[1]; !st.CacheHit {
		t.Fatalf("twin tile stat: %+v, want a cache hit", st)
	}
	sameResult(t, res, ref)
	if coll.Mask.SqDiff(refColl.Mask) != 0 {
		t.Fatal("cached faulted run's bands differ from the reference's")
	}

	// Interrupt the run at tile 5's healthy retry (the only tile that
	// still optimizes against the now-warm disk cache), then resume with
	// yet another fresh cache over the same directory.
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg = mk(NewMaskCollector(testConfig().GridN))
	cfg.Cache = mustCache(t, wcache.Config{Dir: dir})
	cfg.CheckpointPath = ckpt
	inner := cfg.Optimize
	cfg.Optimize = func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
		if info, ok := TileInfoFrom(sim.Ctx); ok && info.Index == 5 {
			cancel()
			<-sim.Ctx.Done()
			return grid.NewReal(target.W, target.H), nil
		}
		return inner(sim, target)
	}
	if _, err := RunContext(ctx, l, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run err = %v, want context.Canceled", err)
	}

	resColl := NewMaskCollector(testConfig().GridN)
	cfg = mk(resColl)
	cfg.Cache = mustCache(t, wcache.Config{Dir: dir})
	cfg.CheckpointPath = ckpt
	res2, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != 5 {
		t.Fatalf("resumed %d tiles, want 5", res2.Resumed)
	}
	// 58 fresh eligible tiles hit the warm disk cache; tile 5 recomputes
	// outside it (its fault script replays deterministically).
	if res2.CacheHits != arrayCells-6 || res2.CacheMisses != 0 {
		t.Fatalf("resumed run hits=%d misses=%d, want %d/0", res2.CacheHits, res2.CacheMisses, arrayCells-6)
	}
	sameResult(t, res2, ref)
	if resColl.Mask.SqDiff(refColl.Mask) != 0 {
		t.Fatal("resumed cached run's bands differ from the reference's")
	}
}

// TestCacheCorruptDiskEntryDegradesToMiss proves the flow-level
// degradation contract for a rotten disk tier: a bit-flipped or
// truncated entry file turns into a miss plus recomputation — never a
// wrong tile — and the healed entry serves the next run.
func TestCacheCorruptDiskEntryDegradesToMiss(t *testing.T) {
	l := arrayLayout()
	ref, err := Run(l, func() Config { cfg := cacheConfig(); cfg.TileWorkers = 1; return cfg }())
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"bit-flip", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncation", func(t *testing.T, path string) {
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, info.Size()/2); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "wcache")
			cfg := cacheConfig()
			cfg.TileWorkers = 1
			cfg.Cache = mustCache(t, wcache.Config{Dir: dir})
			if _, err := Run(l, cfg); err != nil {
				t.Fatal(err)
			}
			entries, err := filepath.Glob(filepath.Join(dir, "*.wce"))
			if err != nil || len(entries) != 1 {
				t.Fatalf("disk entries = %v (err %v), want exactly one", entries, err)
			}
			tc.corrupt(t, entries[0])

			cache := mustCache(t, wcache.Config{Dir: dir})
			cfg = cacheConfig()
			cfg.TileWorkers = 1
			cfg.Cache = cache
			res, err := Run(l, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.CacheHits != arrayCells-1 || res.CacheMisses != 1 {
				t.Fatalf("hits=%d misses=%d, want %d/1", res.CacheHits, res.CacheMisses, arrayCells-1)
			}
			if s := cache.Stats(); s.BadDisk != 1 {
				t.Fatalf("BadDisk = %d, want 1", s.BadDisk)
			}
			sameResult(t, res, ref)

			// The recomputation healed the file: a third process gets a
			// clean disk hit.
			healed := mustCache(t, wcache.Config{Dir: dir})
			cfg = cacheConfig()
			cfg.TileWorkers = 1
			cfg.Cache = healed
			res2, err := Run(l, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res2.CacheHits != arrayCells || res2.CacheMisses != 0 {
				t.Fatalf("healed run hits=%d misses=%d, want %d/0", res2.CacheHits, res2.CacheMisses, arrayCells)
			}
			if s := healed.Stats(); s.DiskHits != 1 || s.BadDisk != 0 {
				t.Fatalf("healed cache stats: %+v", s)
			}
			sameResult(t, res2, ref)
		})
	}
}
