package flow

import (
	"context"
	"math/rand"

	"cfaopc/internal/netpool"
)

// runRemoteSlot is the TCP-transport slot: one per RemoteHosts entry,
// pinned to its host. It is the same supervised loop as a subprocess
// slot with the transport swapped — respawn becomes reconnect (with the
// same exponential backoff + jitter), the silence watchdog covers dead
// links and stalled remotes alike, and the circuit breaker runs with a
// cooldown so a partitioned host degrades this slot's tiles to the
// local in-process ladder for a while and is then probed again. Tiles
// never migrate between slots mid-flight; a tile interrupted by a link
// failure is redispatched on the same slot (warm-started from its last
// journaled partial), so the journal — keyed by tile index — stays the
// only authority on tile state and the stitched output is byte-
// identical for any host mix and reconnect history.
func (env *runEnv) runRemoteSlot(ctx context.Context, id int, host string, jobCh <-chan tileJob, complete func(tileJob, tileOut)) {
	cfg := env.cfg
	dialer := netpool.Dialer{
		// The handshake carries the run's config fingerprint — the same
		// string that prefixes dedup-cache keys — so a worker pinned to a
		// different run's config refuses at connect, not mid-tile.
		Fingerprint: env.keyPrefix,
		Handshake:   cfg.remoteHandshake(),
		Dial:        cfg.RemoteDial,
	}
	s := &procSlot{
		env:  env,
		id:   id,
		host: host,
		connect: func(ctx context.Context) (wlink, error) {
			c, err := dialer.Connect(ctx, host)
			if err != nil {
				return nil, err
			}
			return c, nil
		},
		silence: cfg.remoteSilence(),
		backoff: netpool.Backoff{
			Base: cfg.remoteBackoff(), Max: maxProcBackoff,
			Rng: rand.New(rand.NewSource(int64(id) + 1)),
		},
		breaker: netpool.Breaker{Limit: cfg.remoteCrashLimit(), Cooldown: cfg.remoteCooldown()},
		crashes: &env.remoteCrashes,
		broken:  &env.remoteBroken,
	}
	s.run(ctx, jobCh, complete)
}
