package flow

import (
	"context"
	"fmt"
	"math"
	"time"

	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/litho"
	"cfaopc/internal/opt"
	"cfaopc/internal/procpool"
)

// TileInfo identifies the window an optimizer invocation is serving. The
// flow publishes it on the simulator's context (sim.Ctx) before every
// attempt, which is what lets wrappers — the fault-injection harness
// below, or telemetry — key behaviour on (tile, attempt) without
// widening the Optimizer signature.
type TileInfo struct {
	Index   int // row-major window index
	Attempt int // 0-based attempt counter; the fallback attempt is TileRetries+1
	CX, CY  int // core origin in full-grid pixels
	// Dispatch counts how many times the tile has been handed to a
	// worker process (always 0 in-process). Process-fatal fault scripts
	// (Fault.Kill) key on it so a scripted crash-loop terminates
	// deterministically.
	Dispatch int
}

type tileInfoKey struct{}

// TileInfoFrom extracts the tile identity the flow attached to ctx.
// Outside a flow attempt (single-window use, nil context) ok is false.
func TileInfoFrom(ctx context.Context) (TileInfo, bool) {
	if ctx == nil {
		return TileInfo{}, false
	}
	info, ok := ctx.Value(tileInfoKey{}).(TileInfo)
	return info, ok
}

// Fault is one injected failure mode for a single optimizer attempt.
// Fields compose: Stall and Sleep run first, then Panic, then NaN.
type Fault struct {
	// Sleep blocks before anything else, respecting the attempt's
	// context so per-tile timeouts and run cancellation stay prompt.
	Sleep time.Duration
	// BeatEvery, when > 0, emits synthetic optimizer heartbeats at that
	// interval while the injected Sleep runs — the signature of a tile
	// that is slow but alive, which the stall watchdog must spare.
	BeatEvery time.Duration
	// Stall blocks until the attempt's context is canceled without ever
	// emitting a heartbeat — a wedged optimizer, the failure mode the
	// stall watchdog (Config.StallTimeout) exists to kill early.
	Stall bool
	// Panic aborts the attempt with a panic, exercising the isolation
	// recover path.
	Panic bool
	// NaN returns a NaN-poisoned mask and shot list, exercising output
	// validation.
	NaN bool
	// BadRadius returns one shot with a radius far outside any sane
	// [RMin, RMax] bound, exercising the radius check.
	BadRadius bool
	// Kill, when > 0, SIGKILLs the whole process — mid-tile, no reply,
	// no cleanup — while the tile's dispatch counter is below Kill, but
	// only inside a tile-worker subprocess (procpool.InWorker). Kill: 1
	// scripts one crash followed by a clean redispatch; a huge Kill
	// scripts a crash loop that must trip the supervisor's circuit
	// breaker. In-process runs ignore it entirely, which is what lets
	// one fault plan drive a proc run and its serial reference to
	// byte-identical output.
	Kill int
}

// FaultPlan maps a tile index to its per-attempt fault scripts: attempt
// k of tile i suffers plan[i][k]; attempts past the end of the slice run
// clean. Keying on (tile, attempt) makes every failure → retry →
// fallback trajectory deterministic, which is what lets the tests demand
// byte-identical output across interrupted and uninterrupted runs.
type FaultPlan map[int][]Fault

// InjectFaults wraps an Optimizer with deterministic fault injection
// driven by the tile identity the flow publishes on sim.Ctx. Invocations
// outside a flow (no TileInfo on the context) pass through untouched.
func InjectFaults(opt Optimizer, plan FaultPlan) Optimizer {
	return func(sim *litho.Simulator, target *grid.Real) (*grid.Real, []geom.Circle) {
		info, ok := TileInfoFrom(sim.Ctx)
		if !ok {
			return opt(sim, target)
		}
		script := plan[info.Index]
		if info.Attempt >= len(script) {
			return opt(sim, target)
		}
		f := script[info.Attempt]
		if f.Kill > 0 && info.Dispatch < f.Kill && procpool.InWorker() {
			procpool.SelfKill()
		}
		if f.Stall {
			// Wedge silently until killed: no heartbeats, no return.
			<-sim.Ctx.Done()
			return grid.NewReal(target.W, target.H), nil
		}
		if f.Sleep > 0 {
			if !sleepCtx(sim.Ctx, f.Sleep, f.BeatEvery) {
				// Deadline or cancellation during the injected sleep:
				// return garbage; the flow discards it on ctx.Err().
				return grid.NewReal(target.W, target.H), nil
			}
		}
		if f.Panic {
			panic(fmt.Sprintf("injected fault: tile %d attempt %d", info.Index, info.Attempt))
		}
		if f.NaN {
			mask := grid.NewReal(target.W, target.H)
			mask.Data[0] = math.NaN()
			return mask, []geom.Circle{{X: math.NaN(), Y: 1, R: 1}}
		}
		if f.BadRadius {
			mask := grid.NewReal(target.W, target.H)
			return mask, []geom.Circle{{X: 1, Y: 1, R: 1e9}}
		}
		return opt(sim, target)
	}
}

// sleepCtx blocks for d, optionally emitting a synthetic heartbeat
// every beatEvery, and reports whether the full sleep completed (false
// when ctx was canceled first).
func sleepCtx(ctx context.Context, d, beatEvery time.Duration) bool {
	if beatEvery <= 0 || beatEvery > d {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return true
		case <-ctx.Done():
			return false
		}
	}
	deadline := time.Now().Add(d)
	for beat := 0; ; beat++ {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return true
		}
		slice := beatEvery
		if slice > remaining {
			slice = remaining
		}
		t := time.NewTimer(slice)
		select {
		case <-t.C:
			opt.Beat(ctx, beat, 0)
		case <-ctx.Done():
			t.Stop()
			return false
		}
	}
}
