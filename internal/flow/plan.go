// Occupancy-adaptive tiling: instead of cutting the grid into uniform
// CorePx cells, the flow can plan its tiles from the layout's occupancy
// — merge sparse 2×2 blocks into one large cheap window, split dense
// cells into four small ones, and skip provably-empty regions without
// even rasterizing them. The plan is computed deterministically from
// layout.WindowIndex occupancy counts before any worker starts, and the
// final job list is sorted by (cy, cx), so the row-major reduce,
// checkpoint journal keys, and streamed band order stay exactly as
// stable as in uniform mode.

package flow

import (
	"sort"

	"cfaopc/internal/layout"
)

// Adaptive thresholds resolved when the config leaves them zero. Both
// are fractions of a window's pixel area.
const (
	defaultMergeMax = 0.02
	defaultSplitMin = 0.35
)

// tilePlan is the resolved tiling of one run: the job list in reduce
// order plus the per-band-row bookkeeping the streamed mask assembler
// needs. rows/cols always describe the uniform CorePx band grid — bands
// keep their geometry even when the tiles inside them don't.
type tilePlan struct {
	jobs   []tileJob
	rows   int   // band rows of height CorePx (last may be partial)
	cols   int   // base columns, for reference/stats
	corePx int   // band-row height
	perRow []int // jobs intersecting each band row, gating band emission

	sizes     []int // distinct window edges of non-skip jobs, ascending
	maxWindow int
	merged    int // 2×2 blocks fused into one tile
	split     int // cells fractured into four sub-tiles
	skipped   int // tiles proven empty by the occupancy scan
}

// rowSpan returns the inclusive band-row range job j's core intersects.
func (p *tilePlan) rowSpan(j tileJob) (int, int) {
	r0 := j.cy / p.corePx
	r1 := (j.cy + j.core - 1) / p.corePx
	if r1 > p.rows-1 {
		r1 = p.rows - 1
	}
	return r0, r1
}

// planTiles computes the run's tiling. Uniform mode reproduces the
// historical row-major CorePx grid exactly; adaptive mode classifies
// cells by window occupancy:
//
//   - an even-aligned 2×2 block of full cells whose combined (merged)
//     window occupancy is ≤ AdaptiveMergeMax of its area becomes one
//     tile with a 2·CorePx core — or a skip tile when exactly empty;
//   - a remaining cell with zero window occupancy becomes a skip tile
//     (no rasterization, no shots — the same contribution an
//     unoccupied tile has always made);
//   - a full cell at ≥ AdaptiveSplitMin occupancy splits into four
//     CorePx/2-core tiles (requires even CorePx);
//   - everything else stays a base tile.
//
// Windows stay square (core + 2·HaloPx on each axis) at every size, and
// a merge is only taken when its window fits the grid. The job list is
// sorted by (cy, cx) and indexed in that order; those indices are the
// checkpoint journal keys, so the adaptive knobs are part of the
// journal fingerprint.
func planTiles(cfg Config, ix *layout.WindowIndex) tilePlan {
	core, halo := cfg.CorePx, cfg.HaloPx
	window := core + 2*halo
	cols := (cfg.GridN + core - 1) / core
	p := tilePlan{rows: cols, cols: cols, corePx: core}

	if !cfg.AdaptiveTiles {
		for cy := 0; cy < cfg.GridN; cy += core {
			for cx := 0; cx < cfg.GridN; cx += core {
				p.jobs = append(p.jobs, tileJob{index: len(p.jobs), cx: cx, cy: cy, core: core, window: window})
			}
		}
		p.finish()
		return p
	}

	mergeMax := cfg.AdaptiveMergeMax
	if mergeMax == 0 {
		mergeMax = defaultMergeMax
	}
	splitMin := cfg.AdaptiveSplitMin
	if splitMin == 0 {
		splitMin = defaultSplitMin
	}

	used := make([]bool, p.rows*p.cols)
	mergedCore := 2 * core
	mergedWindow := mergedCore + 2*halo
	if mergedWindow <= cfg.GridN {
		for r := 0; r+1 < p.rows; r += 2 {
			for c := 0; c+1 < p.cols; c += 2 {
				cx, cy := c*core, r*core
				if cx+mergedCore > cfg.GridN || cy+mergedCore > cfg.GridN {
					continue // block touches a partial edge cell
				}
				occ := ix.Occupancy(cx-halo, cy-halo, mergedWindow, mergedWindow)
				if float64(occ) > mergeMax*float64(mergedWindow*mergedWindow) {
					continue
				}
				p.jobs = append(p.jobs, tileJob{cx: cx, cy: cy, core: mergedCore, window: mergedWindow, skip: occ == 0})
				used[r*p.cols+c] = true
				used[r*p.cols+c+1] = true
				used[(r+1)*p.cols+c] = true
				used[(r+1)*p.cols+c+1] = true
				p.merged++
				if occ == 0 {
					p.skipped++
				}
			}
		}
	}

	subCore := core / 2
	subWindow := subCore + 2*halo
	canSplit := core%2 == 0 && subCore > 0
	for r := 0; r < p.rows; r++ {
		for c := 0; c < p.cols; c++ {
			if used[r*p.cols+c] {
				continue
			}
			cx, cy := c*core, r*core
			occ := ix.Occupancy(cx-halo, cy-halo, window, window)
			if occ == 0 {
				p.jobs = append(p.jobs, tileJob{cx: cx, cy: cy, core: core, window: window, skip: true})
				p.skipped++
				continue
			}
			full := cx+core <= cfg.GridN && cy+core <= cfg.GridN
			if canSplit && full && float64(occ) >= splitMin*float64(window*window) {
				for _, d := range [4][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
					p.jobs = append(p.jobs, tileJob{cx: cx + d[0]*subCore, cy: cy + d[1]*subCore, core: subCore, window: subWindow})
				}
				p.split++
				continue
			}
			p.jobs = append(p.jobs, tileJob{cx: cx, cy: cy, core: core, window: window})
		}
	}

	sort.Slice(p.jobs, func(i, k int) bool {
		if p.jobs[i].cy != p.jobs[k].cy {
			return p.jobs[i].cy < p.jobs[k].cy
		}
		return p.jobs[i].cx < p.jobs[k].cx
	})
	for i := range p.jobs {
		p.jobs[i].index = i
	}
	p.finish()
	return p
}

// finish derives the per-row completion counts and the distinct window
// sizes (skip tiles never bind a simulator, so they don't contribute a
// size).
func (p *tilePlan) finish() {
	p.perRow = make([]int, p.rows)
	seen := make(map[int]bool)
	for _, j := range p.jobs {
		r0, r1 := p.rowSpan(j)
		for r := r0; r <= r1; r++ {
			p.perRow[r]++
		}
		if j.window > p.maxWindow {
			p.maxWindow = j.window
		}
		if !j.skip && !seen[j.window] {
			seen[j.window] = true
			p.sizes = append(p.sizes, j.window)
		}
	}
	sort.Ints(p.sizes)
}
