package flow

import (
	"path/filepath"
	"sync"
	"testing"

	"cfaopc/internal/geom"
)

func shotsEqual(a, b []geom.Circle) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// eventLog is a race-safe EventSink that records the stream.
type eventLog struct {
	mu  sync.Mutex
	evs []Event
}

func (l *eventLog) sink() EventSink {
	return func(ev Event) {
		l.mu.Lock()
		l.evs = append(l.evs, ev)
		l.mu.Unlock()
	}
}

func (l *eventLog) snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.evs...)
}

// TestEventsStream verifies the subscriber contract: every planned tile
// emits exactly one EventTile, occupied tiles emit their heartbeats
// before their completion, and attaching a sink does not perturb the
// result.
func TestEventsStream(t *testing.T) {
	l := bigLayout()
	cfg := testConfig()
	cfg.Optimize = circleOptimizer(2)
	ref, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var log eventLog
	cfg.Events = log.sink()
	cfg.TileWorkers = 4
	res, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !shotsEqual(ref.Shots, res.Shots) {
		t.Fatal("attaching an event sink changed the shots")
	}

	evs := log.snapshot()
	tileEvents := map[int]int{}
	beats := map[int]int{}
	beatAfterTile := false
	for _, ev := range evs {
		switch ev.Kind {
		case EventTile:
			if ev.Stat == nil {
				t.Fatal("EventTile without a stat")
			}
			if ev.Stat.Index != ev.Tile {
				t.Fatalf("tile event index mismatch: %d vs %d", ev.Stat.Index, ev.Tile)
			}
			tileEvents[ev.Tile]++
		case EventBeat:
			if tileEvents[ev.Tile] > 0 {
				beatAfterTile = true
			}
			beats[ev.Tile]++
		}
	}
	if len(tileEvents) != res.Tiles {
		t.Fatalf("tile events for %d tiles, want %d", len(tileEvents), res.Tiles)
	}
	for idx, n := range tileEvents {
		if n != 1 {
			t.Fatalf("tile %d emitted %d completions", idx, n)
		}
	}
	for _, ts := range res.TileStats {
		if ts.Occupied && beats[ts.Index] == 0 {
			t.Fatalf("occupied tile %d emitted no heartbeats", ts.Index)
		}
		if beats[ts.Index] != ts.Iters {
			t.Fatalf("tile %d: %d beat events, stat says %d iters", ts.Index, beats[ts.Index], ts.Iters)
		}
	}
	if beatAfterTile {
		t.Fatal("a heartbeat arrived after its tile's completion event")
	}
}

// TestEventsResumedTiles verifies a resumed run re-emits completions
// for journal-replayed tiles, marked Resumed, before fresh work starts.
func TestEventsResumedTiles(t *testing.T) {
	l := bigLayout()
	cfg := testConfig()
	cfg.Optimize = circleOptimizer(2)
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "run.ckpt")
	if _, err := Run(l, cfg); err != nil {
		t.Fatal(err)
	}

	var log eventLog
	cfg.Events = log.sink()
	res, err := Run(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != res.Tiles {
		t.Fatalf("resumed %d of %d tiles", res.Resumed, res.Tiles)
	}
	evs := log.snapshot()
	seen := map[int]bool{}
	for _, ev := range evs {
		if ev.Kind != EventTile {
			t.Fatalf("resumed run emitted %s event", ev.Kind)
		}
		if !ev.Stat.Resumed {
			t.Fatalf("tile %d completion not marked Resumed", ev.Tile)
		}
		seen[ev.Tile] = true
	}
	if len(seen) != res.Tiles {
		t.Fatalf("resumed completions for %d tiles, want %d", len(seen), res.Tiles)
	}
}
