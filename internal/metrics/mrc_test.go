package metrics

import (
	"math"
	"math/rand"
	"testing"

	"cfaopc/internal/geom"
)

func TestCheckCircleSpacing(t *testing.T) {
	const dx = 4.0 // nm/px
	shots := []geom.Circle{
		{X: 10, Y: 10, R: 5},
		{X: 18, Y: 10, R: 5}, // d=8 < r1+r2=10 → overlapping, fine
		{X: 40, Y: 10, R: 5}, // gap to #1: 40-18-10 = 12 px = 48 nm ≥ 40 → fine
		{X: 60, Y: 10, R: 5}, // gap to #2: 60-40-10 = 10 px = 40 nm → fine (boundary)
		{X: 74, Y: 10, R: 5}, // gap to #3: 74-60-10 = 4 px = 16 nm → violation
	}
	v := CheckCircleSpacing(shots, dx, 40)
	if len(v) != 1 {
		t.Fatalf("violations = %+v, want exactly 1", v)
	}
	if v[0].Shot != 3 {
		t.Fatalf("flagged shot %d, want 3 (pairs with 4)", v[0].Shot)
	}
}

func TestCheckCircleSpacingEmptyAndSingle(t *testing.T) {
	if v := CheckCircleSpacing(nil, 4, 40); v != nil {
		t.Fatal("nil shots produced violations")
	}
	if v := CheckCircleSpacing([]geom.Circle{{X: 1, Y: 1, R: 2}}, 4, 40); v != nil {
		t.Fatal("single shot produced violations")
	}
}

// Property: the spatial-hash check finds exactly the same violations as
// the O(n²) brute force.
func TestCheckCircleSpacingMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(40) + 2
		shots := make([]geom.Circle, n)
		for i := range shots {
			shots[i] = geom.Circle{
				X: rng.Float64() * 100,
				Y: rng.Float64() * 100,
				R: rng.Float64()*8 + 2,
			}
		}
		const dx, spacing = 2.0, 30.0
		got := CheckCircleSpacing(shots, dx, spacing)
		brute := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dxv := shots[i].X - shots[j].X
				dyv := shots[i].Y - shots[j].Y
				d := dxv*dxv + dyv*dyv
				gap := math.Sqrt(d) - shots[i].R - shots[j].R
				if gap > 0 && gap < spacing/dx {
					brute++
				}
			}
		}
		if len(got) != brute {
			t.Fatalf("trial %d: hash found %d violations, brute %d", trial, len(got), brute)
		}
	}
}
