package metrics

import (
	"math"
	"testing"

	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
)

func TestL2CountsDifferingPixels(t *testing.T) {
	a := grid.NewReal(4, 4)
	b := grid.NewReal(4, 4)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	b.Set(1, 1, 1)
	b.Set(2, 2, 1)
	// Two differing pixels at dx = 2 nm → 2·4 = 8 nm².
	if got := L2(a, b, 2); got != 8 {
		t.Fatalf("L2 = %v, want 8", got)
	}
	if got := L2(a, a, 2); got != 0 {
		t.Fatalf("self L2 = %v", got)
	}
}

func TestL2PanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	L2(grid.NewReal(2, 2), grid.NewReal(3, 3), 1)
}

func TestPVBSymmetric(t *testing.T) {
	a := grid.NewReal(3, 3)
	b := grid.NewReal(3, 3)
	a.Fill(1)
	b.Set(1, 1, 1)
	if PVB(a, b, 1) != PVB(b, a, 1) {
		t.Fatal("PVB not symmetric")
	}
	if got := PVB(a, b, 1); got != 8 {
		t.Fatalf("PVB = %v, want 8", got)
	}
}

// perfectPrint returns a layout plus its exact rasterization, so EPE is 0.
func perfectPrint(n int) (*layout.Layout, *grid.Real) {
	l := &layout.Layout{Name: "t", TileNM: 512, Rects: []layout.Rect{{X: 128, Y: 128, W: 128, H: 256}}}
	return l, l.Rasterize(n)
}

func TestEPEPerfectPrintHasNoViolations(t *testing.T) {
	l, z := perfectPrint(256)
	if got := EPEViolations(l, z, EPESpacingNM, EPEConstraintNM); got != 0 {
		t.Fatalf("perfect print has %d EPE violations", got)
	}
}

func TestEPEEmptyPrintViolatesEverywhere(t *testing.T) {
	l, _ := perfectPrint(256)
	empty := grid.NewReal(256, 256)
	got := EPEViolations(l, empty, EPESpacingNM, EPEConstraintNM)
	// Perimeter 2·(128+256) = 768 nm at 40 nm spacing → ≈ 19 samples, all
	// violated (inner probe fails).
	if got < 15 {
		t.Fatalf("empty print only %d violations", got)
	}
}

func TestEPESmallShiftWithinConstraint(t *testing.T) {
	// A print dilated by ~8 nm (2 px at 4 nm/px) stays within the 15 nm
	// constraint, so no violations.
	l, z := perfectPrint(128) // dx = 4 nm
	dil := geom.Dilate(z, geom.DiskElement(2))
	if got := EPEViolations(l, dil, EPESpacingNM, EPEConstraintNM); got != 0 {
		t.Fatalf("8 nm dilation caused %d violations", got)
	}
	// Dilation by ~24 nm (6 px) must violate on every edge sample.
	big := geom.Dilate(z, geom.DiskElement(6))
	if got := EPEViolations(l, big, EPESpacingNM, EPEConstraintNM); got == 0 {
		t.Fatal("24 nm dilation caused no violations")
	}
}

func TestEPESkipsInternalEdges(t *testing.T) {
	// Two touching rects forming an L: the shared edge must not be
	// sampled, so a perfect print still has zero violations.
	l := &layout.Layout{Name: "L", TileNM: 512, Rects: []layout.Rect{
		{X: 128, Y: 128, W: 64, H: 192},
		{X: 128, Y: 320, W: 192, H: 64},
	}}
	z := l.Rasterize(256)
	if got := EPEViolations(l, z, EPESpacingNM, EPEConstraintNM); got != 0 {
		t.Fatalf("internal edge sampled: %d violations", got)
	}
}

func TestCheckCircleMRC(t *testing.T) {
	shots := []geom.Circle{
		{X: 10, Y: 10, R: 5},  // 20 nm at dx=4 → fine
		{X: 20, Y: 20, R: 2},  // 8 nm → below min
		{X: 30, Y: 30, R: 25}, // 100 nm → above max
	}
	v := CheckCircleMRC(shots, 4, 12, 76)
	if len(v) != 2 {
		t.Fatalf("violations = %+v, want 2", v)
	}
	if v[0].Shot != 1 || v[1].Shot != 2 {
		t.Fatalf("wrong shots flagged: %+v", v)
	}
}

func TestEvaluateAggregates(t *testing.T) {
	l, z := perfectPrint(256)
	r := Evaluate(l, z, z, z, 42)
	if r.L2 != 0 || r.PVB != 0 || r.EPE != 0 || r.Shots != 42 {
		t.Fatalf("report = %+v", r)
	}
	// Degraded corners produce positive PVB.
	zMax := geom.Dilate(z, geom.DiskElement(1))
	zMin := geom.Erode(z, geom.DiskElement(1))
	r2 := Evaluate(l, z, zMax, zMin, 1)
	if r2.PVB <= 0 {
		t.Fatal("PVB should be positive for differing corners")
	}
	dx := float64(l.TileNM) / 256.0
	if math.Abs(r2.PVB-L2(zMax, zMin, dx)) > 1e-9 {
		t.Fatal("Evaluate PVB inconsistent with direct computation")
	}
}
