package metrics

import (
	"math"

	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
)

// CDUStats summarizes critical-dimension uniformity over a set of gauges:
// the per-gauge deviation of the printed CD from the drawn CD.
type CDUStats struct {
	Gauges   int     // gauges measured (features tall enough to cut)
	Failed   int     // gauges where the feature did not print at all
	MeanBias float64 // mean (printed − drawn) CD in nm
	Sigma    float64 // standard deviation of printed CD in nm
	WorstAbs float64 // worst |printed − drawn| in nm
}

// gauge pairs a measurement cut with its drawn width.
type cduGauge struct {
	g     litho.Gauge
	drawn float64 // nm
}

// cduGauges builds one horizontal CD gauge through the vertical midline of
// every layout rectangle at least minHeightNM tall — the standard "one
// gauge per drawn feature" CDU setup.
func cduGauges(l *layout.Layout, n int, minHeightNM float64) []cduGauge {
	dx := float64(l.TileNM) / float64(n)
	var gauges []cduGauge
	for _, r := range l.Rects {
		if float64(r.H) < minHeightNM {
			continue
		}
		midY := int((float64(r.Y) + float64(r.H)/2) / dx)
		if midY < 0 || midY >= n {
			continue
		}
		// Cut a window somewhat wider than the feature so the run is
		// bounded, without reaching the neighbouring lane.
		gauges = append(gauges, cduGauge{
			g: litho.Gauge{
				X1: int(float64(r.X)/dx) - 2,
				X2: int(float64(r.X+r.W)/dx) + 2,
				Y:  midY,
			},
			drawn: float64(r.W),
		})
	}
	return gauges
}

// AutoGauges exposes the gauge cuts used by CDU (for custom sweeps).
func AutoGauges(l *layout.Layout, n int, minHeightNM float64) []litho.Gauge {
	cg := cduGauges(l, n, minHeightNM)
	out := make([]litho.Gauge, len(cg))
	for i, c := range cg {
		out[i] = c.g
	}
	return out
}

// CDU measures critical-dimension uniformity of a printed image against
// the drawn widths of the layout's gaugeable rectangles.
func CDU(l *layout.Layout, z *grid.Real, minHeightNM float64) CDUStats {
	n := z.W
	dx := float64(l.TileNM) / float64(n)
	var stats CDUStats
	var cds, biases []float64
	for _, cg := range cduGauges(l, n, minHeightNM) {
		cd := litho.MeasureCD(z, cg.g) * dx
		stats.Gauges++
		if cd == 0 {
			stats.Failed++
			continue
		}
		cds = append(cds, cd)
		biases = append(biases, cd-cg.drawn)
		if a := math.Abs(cd - cg.drawn); a > stats.WorstAbs {
			stats.WorstAbs = a
		}
	}
	if len(cds) == 0 {
		return stats
	}
	for _, b := range biases {
		stats.MeanBias += b
	}
	stats.MeanBias /= float64(len(biases))

	cdMean := 0.0
	for _, c := range cds {
		cdMean += c
	}
	cdMean /= float64(len(cds))
	varSum := 0.0
	for _, c := range cds {
		varSum += (c - cdMean) * (c - cdMean)
	}
	stats.Sigma = math.Sqrt(varSum / float64(len(cds)))
	return stats
}
