package metrics

import (
	"testing"

	"cfaopc/internal/geom"
	"cfaopc/internal/litho"
	"cfaopc/internal/optics"
)

func robustnessSetup(t *testing.T) *litho.Simulator {
	t.Helper()
	cfg := optics.Default()
	cfg.TileNM = 512
	cfg.NumKernels = 6
	sim, err := litho.New(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestShotRobustness(t *testing.T) {
	sim := robustnessSetup(t)
	target := geom.RasterizeCircles(64, 64, []geom.Circle{{X: 32, Y: 32, R: 8}})
	shots := []geom.Circle{{X: 32, Y: 32, R: 8}}

	rep, err := ShotRobustness(sim, target, shots,
		WriterNoise{PlacementSigmaNM: 8, RadiusSigmaNM: 4}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != 10 {
		t.Fatalf("trials = %d", rep.Trials)
	}
	if rep.WorstL2 < rep.BaseL2 {
		t.Fatalf("worst L2 %v below base %v", rep.WorstL2, rep.BaseL2)
	}
	if rep.MeanDrift <= 0 {
		t.Fatal("noise produced zero drift")
	}

	// Deterministic per seed.
	rep2, _ := ShotRobustness(sim, target, shots,
		WriterNoise{PlacementSigmaNM: 8, RadiusSigmaNM: 4}, 10, 1)
	if rep2.MeanL2 != rep.MeanL2 {
		t.Fatal("not deterministic for fixed seed")
	}

	// More noise → at least as much mean drift.
	repBig, _ := ShotRobustness(sim, target, shots,
		WriterNoise{PlacementSigmaNM: 24, RadiusSigmaNM: 12}, 10, 1)
	if repBig.MeanDrift < rep.MeanDrift {
		t.Fatalf("tripled noise reduced drift: %v vs %v", repBig.MeanDrift, rep.MeanDrift)
	}
}

func TestShotRobustnessErrors(t *testing.T) {
	sim := robustnessSetup(t)
	target := geom.RasterizeCircles(64, 64, []geom.Circle{{X: 32, Y: 32, R: 8}})
	if _, err := ShotRobustness(sim, target, nil, WriterNoise{}, 5, 1); err == nil {
		t.Error("empty shots accepted")
	}
	if _, err := ShotRobustness(sim, target, []geom.Circle{{X: 1, Y: 1, R: 1}}, WriterNoise{}, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}
