package metrics

import (
	"fmt"
	"math/rand"

	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/litho"
)

// WriterNoise models the e-beam writer's shot-level errors: Gaussian
// placement jitter and radius (dose-to-size) error, both in nm. The
// paper's introduction cites exactly this failure mode — "rectangular
// fractured mask shapes are prone to writing errors due to short-range
// e-beam blur" — as a motivation for circular shots.
type WriterNoise struct {
	PlacementSigmaNM float64 // per-axis center jitter
	RadiusSigmaNM    float64 // radius error
}

// RobustnessReport summarizes a Monte-Carlo writer-error experiment.
type RobustnessReport struct {
	Trials    int
	MeanL2    float64 // mean print L2 vs target over trials (nm²)
	WorstL2   float64
	BaseL2    float64 // noise-free print L2
	MeanDrift float64 // mean |trial L2 − base L2| (nm²)
}

// ShotRobustness perturbs the shot list `trials` times with the writer
// noise model, re-simulates the print at the nominal corner each time, and
// reports the L2 distribution against the target. Deterministic for a
// given seed.
func ShotRobustness(sim *litho.Simulator, target *grid.Real, shots []geom.Circle,
	noise WriterNoise, trials int, seed int64) (RobustnessReport, error) {
	if trials <= 0 {
		return RobustnessReport{}, fmt.Errorf("metrics: trials must be positive")
	}
	if len(shots) == 0 {
		return RobustnessReport{}, fmt.Errorf("metrics: empty shot list")
	}
	rng := rand.New(rand.NewSource(seed))
	dx := sim.DX

	l2Of := func(ss []geom.Circle) float64 {
		mask := geom.RasterizeCircles(sim.N, sim.N, ss)
		z := litho.ResistBinary(sim.Aerial(mask, sim.Focus, false, nil), 1.0)
		return L2(z, target, dx)
	}

	rep := RobustnessReport{Trials: trials}
	rep.BaseL2 = l2Of(shots)
	perturbed := make([]geom.Circle, len(shots))
	for tr := 0; tr < trials; tr++ {
		for i, s := range shots {
			perturbed[i] = geom.Circle{
				X: s.X + rng.NormFloat64()*noise.PlacementSigmaNM/dx,
				Y: s.Y + rng.NormFloat64()*noise.PlacementSigmaNM/dx,
				R: maxf(0.5, s.R+rng.NormFloat64()*noise.RadiusSigmaNM/dx),
			}
		}
		l2 := l2Of(perturbed)
		rep.MeanL2 += l2
		if l2 > rep.WorstL2 {
			rep.WorstL2 = l2
		}
		rep.MeanDrift += absf(l2 - rep.BaseL2)
	}
	rep.MeanL2 /= float64(trials)
	rep.MeanDrift /= float64(trials)
	return rep, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
