package metrics

import (
	"math"
	"testing"

	"cfaopc/internal/layout"
)

func cduLayout() *layout.Layout {
	return &layout.Layout{
		Name:   "cdu",
		TileNM: 512,
		Rects: []layout.Rect{
			{X: 100, Y: 100, W: 64, H: 300},
			{X: 300, Y: 100, W: 80, H: 300},
			{X: 100, Y: 450, W: 200, H: 20}, // too short for a gauge at 40nm
		},
	}
}

func TestAutoGauges(t *testing.T) {
	l := cduLayout()
	gauges := AutoGauges(l, 128, 40)
	if len(gauges) != 2 {
		t.Fatalf("gauges = %d, want 2 (short rect excluded)", len(gauges))
	}
	// Gauge rows are the vertical midlines (y = 250 nm → px 62 at 4 nm/px).
	if gauges[0].Y != 62 {
		t.Fatalf("gauge row %d, want 62", gauges[0].Y)
	}
}

func TestCDUPerfectPrint(t *testing.T) {
	l := cduLayout()
	z := l.Rasterize(128)
	s := CDU(l, z, 40)
	if s.Gauges != 2 || s.Failed != 0 {
		t.Fatalf("stats %+v", s)
	}
	// A perfect raster prints the drawn CD exactly (within a pixel).
	if math.Abs(s.MeanBias) > 4 {
		t.Fatalf("mean bias %v nm on a perfect print", s.MeanBias)
	}
	if s.WorstAbs > 4 {
		t.Fatalf("worst deviation %v nm on a perfect print", s.WorstAbs)
	}
}

func TestCDUUniformBiasShowsInMeanNotSigma(t *testing.T) {
	l := &layout.Layout{
		Name:   "b",
		TileNM: 512,
		Rects: []layout.Rect{
			{X: 100, Y: 100, W: 64, H: 300},
			{X: 300, Y: 100, W: 64, H: 300},
		},
	}
	// Print both bars 8 nm (2 px) wider on each side.
	wide := &layout.Layout{Name: "w", TileNM: 512, Rects: []layout.Rect{
		{X: 92, Y: 100, W: 80, H: 300},
		{X: 292, Y: 100, W: 80, H: 300},
	}}
	z := wide.Rasterize(128)
	s := CDU(l, z, 40)
	if s.MeanBias < 10 || s.MeanBias > 22 {
		t.Fatalf("mean bias %v, want ≈ +16 nm", s.MeanBias)
	}
	if s.Sigma > 4 {
		t.Fatalf("sigma %v for identical bars, want ≈ 0", s.Sigma)
	}
}

func TestCDUFailedFeature(t *testing.T) {
	l := cduLayout()
	// Print only the first bar.
	partial := &layout.Layout{Name: "p", TileNM: 512, Rects: []layout.Rect{l.Rects[0]}}
	z := partial.Rasterize(128)
	s := CDU(l, z, 40)
	if s.Failed != 1 {
		t.Fatalf("failed = %d, want 1", s.Failed)
	}
}

func TestCDUEmptyPrint(t *testing.T) {
	l := cduLayout()
	empty := (&layout.Layout{Name: "e", TileNM: 512}).Rasterize(128)
	s := CDU(l, empty, 40)
	if s.Failed != s.Gauges || s.Gauges != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.MeanBias != 0 || s.Sigma != 0 {
		t.Fatalf("empty print stats should be zero: %+v", s)
	}
}
