// Package metrics implements the four evaluation metrics of Section 2.3 —
// squared L2, PVB, EPE and shot count — plus the mask-rule checks the
// circular writer makes cheap (radius bounds per shot).
//
// L2 and PVB are reported in nm² (differing pixels × pixel area), which
// keeps values comparable across simulation resolutions and matches the
// unit note under the paper's Table 2.
package metrics

import (
	"fmt"

	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
)

// EPE measurement conventions (ICCAD-2013 style).
const (
	// EPESpacingNM is the distance between EPE sample points along edges.
	EPESpacingNM = 40.0
	// EPEConstraintNM is the tolerance beyond which a sample violates.
	EPEConstraintNM = 15.0
)

// L2 returns ‖zNom − target‖² in nm² for binary images: the count of
// differing pixels scaled by the pixel area.
func L2(zNom, target *grid.Real, dxNM float64) float64 {
	if zNom.W != target.W || zNom.H != target.H {
		panic(fmt.Sprintf("metrics: L2 shape mismatch %dx%d vs %dx%d", zNom.W, zNom.H, target.W, target.H))
	}
	n := 0
	for i := range zNom.Data {
		a := zNom.Data[i] > 0.5
		b := target.Data[i] > 0.5
		if a != b {
			n++
		}
	}
	return float64(n) * dxNM * dxNM
}

// PVB returns ‖zMax − zMin‖² in nm²: the area of the process-variation
// band between the outer and inner printed contours.
func PVB(zMax, zMin *grid.Real, dxNM float64) float64 {
	return L2(zMax, zMin, dxNM)
}

// EPEViolations counts sample points on the target polygon edges whose
// printed contour deviates by more than constraintNM, sampling every
// spacingNM along each horizontal and vertical edge. Edge segments
// interior to the pattern union (where touching rectangles join) are
// skipped.
func EPEViolations(l *layout.Layout, zNom *grid.Real, spacingNM, constraintNM float64) int {
	n := zNom.W
	dx := float64(l.TileNM) / float64(n)
	targetRaster := l.Rasterize(n)

	at := func(xNM, yNM float64) bool {
		px := int(xNM / dx)
		py := int(yNM / dx)
		if px < 0 || px >= n || py < 0 || py >= n {
			return false
		}
		return zNom.Data[py*n+px] > 0.5
	}
	targetAt := func(xNM, yNM float64) bool {
		px := int(xNM / dx)
		py := int(yNM / dx)
		if px < 0 || px >= n || py < 0 || py >= n {
			return false
		}
		return targetRaster.Data[py*n+px] > 0.5
	}

	violations := 0
	// probe measures one sample at edge point (x, y) with outward normal
	// (nx, ny); returns true on violation.
	probe := func(x, y, nx, ny float64) bool {
		// Skip samples on interior edges: just outside must be background
		// in the target itself.
		outProbe := constraintNM / 2
		if targetAt(x+nx*outProbe, y+ny*outProbe) {
			return false
		}
		// The print must not extend beyond constraint outward…
		if at(x+nx*(constraintNM+dx/2), y+ny*(constraintNM+dx/2)) {
			return true
		}
		// …and must still cover the point constraint inward.
		if !at(x-nx*(constraintNM+dx/2), y-ny*(constraintNM+dx/2)) {
			return true
		}
		return false
	}

	for _, r := range l.Rects {
		x0, y0 := float64(r.X), float64(r.Y)
		x1, y1 := float64(r.X+r.W), float64(r.Y+r.H)
		// Horizontal edges (top outward -y, bottom outward +y).
		for s := spacingNM / 2; s < float64(r.W); s += spacingNM {
			if probe(x0+s, y0, 0, -1) {
				violations++
			}
			if probe(x0+s, y1, 0, 1) {
				violations++
			}
		}
		// Vertical edges (left outward -x, right outward +x).
		for s := spacingNM / 2; s < float64(r.H); s += spacingNM {
			if probe(x0, y0+s, -1, 0) {
				violations++
			}
			if probe(x1, y0+s, 1, 0) {
				violations++
			}
		}
	}
	return violations
}

// MRCViolation describes one circular-shot mask-rule violation.
type MRCViolation struct {
	Shot   int // index into the shot list
	Reason string
}

// CheckCircleMRC verifies every shot's radius lies within [rMinNM,
// rMaxNM]. Radii are given in pixels; dxNM converts to nm. This is the
// "effortless" circular MRC the paper credits the writer with — no
// polygon-to-polygon spacing analysis is needed because shots may overlap
// freely.
func CheckCircleMRC(shots []geom.Circle, dxNM, rMinNM, rMaxNM float64) []MRCViolation {
	var out []MRCViolation
	for i, c := range shots {
		rNM := c.R * dxNM
		switch {
		case rNM < rMinNM-1e-9:
			out = append(out, MRCViolation{Shot: i, Reason: fmt.Sprintf("radius %.1f nm below minimum %.1f nm", rNM, rMinNM)})
		case rNM > rMaxNM+1e-9:
			out = append(out, MRCViolation{Shot: i, Reason: fmt.Sprintf("radius %.1f nm above maximum %.1f nm", rNM, rMaxNM)})
		}
	}
	return out
}

// Report aggregates the paper's four metrics for one optimized mask.
type Report struct {
	L2    float64 // nm²
	PVB   float64 // nm²
	EPE   int
	Shots int
}

// Evaluate computes the full metric set from the printed corners, the
// target layout, and the shot count.
func Evaluate(l *layout.Layout, zNom, zMax, zMin *grid.Real, shots int) Report {
	dx := float64(l.TileNM) / float64(zNom.W)
	target := l.Rasterize(zNom.W)
	return Report{
		L2:    L2(zNom, target, dx),
		PVB:   PVB(zMax, zMin, dx),
		EPE:   EPEViolations(l, zNom, EPESpacingNM, EPEConstraintNM),
		Shots: shots,
	}
}
