package metrics

import (
	"testing"

	"cfaopc/internal/geom"
	"cfaopc/internal/layout"
)

func TestEPEContourPerfectPrint(t *testing.T) {
	l, z := perfectPrint(256)
	ms := EPEContour(l, z, EPESpacingNM, EPEConstraintNM)
	if len(ms) == 0 {
		t.Fatal("no measurements")
	}
	if v := CountEPEViolations(ms); v != 0 {
		t.Fatalf("perfect print has %d contour EPE violations", v)
	}
	// Errors on a perfect print are sub-pixel.
	for _, m := range ms {
		if m.ErrorNM > 4 {
			t.Fatalf("perfect print edge error %v nm at (%v,%v)", m.ErrorNM, m.XNM, m.YNM)
		}
	}
}

func TestEPEContourEmptyPrint(t *testing.T) {
	l, _ := perfectPrint(256)
	empty := l.Rasterize(256).Scale(0)
	ms := EPEContour(l, empty, EPESpacingNM, EPEConstraintNM)
	if v := CountEPEViolations(ms); v != len(ms) || v == 0 {
		t.Fatalf("empty print: %d of %d violations, want all", v, len(ms))
	}
}

func TestEPEContourAgreesWithProbeOnDilation(t *testing.T) {
	// Both measurements must flag a 24 nm dilation and pass an 8 nm one.
	l, z := perfectPrint(128) // 4 nm/px
	small := geom.Dilate(z, geom.DiskElement(2))
	big := geom.Dilate(z, geom.DiskElement(6))

	if v := CountEPEViolations(EPEContour(l, small, EPESpacingNM, EPEConstraintNM)); v != 0 {
		t.Fatalf("8 nm dilation flagged by contour EPE: %d", v)
	}
	if v := CountEPEViolations(EPEContour(l, big, EPESpacingNM, EPEConstraintNM)); v == 0 {
		t.Fatal("24 nm dilation missed by contour EPE")
	}
	probeSmall := EPEViolations(l, small, EPESpacingNM, EPEConstraintNM)
	probeBig := EPEViolations(l, big, EPESpacingNM, EPEConstraintNM)
	if probeSmall != 0 || probeBig == 0 {
		t.Fatalf("probe EPE disagrees: small=%d big=%d", probeSmall, probeBig)
	}
}

func TestEPEContourSkipsInternalEdges(t *testing.T) {
	l := &layout.Layout{Name: "L", TileNM: 512, Rects: []layout.Rect{
		{X: 128, Y: 128, W: 64, H: 192},
		{X: 128, Y: 320, W: 192, H: 64},
	}}
	z := l.Rasterize(256)
	ms := EPEContour(l, z, EPESpacingNM, EPEConstraintNM)
	if v := CountEPEViolations(ms); v != 0 {
		t.Fatalf("internal edge sampled: %d violations", v)
	}
}
