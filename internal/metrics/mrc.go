package metrics

import (
	"fmt"
	"math"

	"cfaopc/internal/geom"
)

// CheckCircleSpacing verifies the inter-feature spacing rule the paper
// credits the circular writer with making trivial: any two shots must
// either overlap (they intentionally merge into one feature, which the
// writer allows) or be separated by at least minSpacingNM of clear mask.
// A gap in (0, minSpacing) would print an unresolvable slit.
//
// The check runs in O(n) expected time with a spatial hash over shot
// centers — exactly the "check the distances between the circular shots
// with their positions and radii" analysis from the paper's introduction.
func CheckCircleSpacing(shots []geom.Circle, dxNM, minSpacingNM float64) []MRCViolation {
	if len(shots) < 2 {
		return nil
	}
	// Cell size: largest interaction distance (two max radii + spacing).
	maxR := 0.0
	for _, s := range shots {
		if s.R > maxR {
			maxR = s.R
		}
	}
	cell := 2*maxR + minSpacingNM/dxNM
	if cell <= 0 {
		cell = 1
	}
	type key struct{ cx, cy int }
	buckets := map[key][]int{}
	keyOf := func(s geom.Circle) key {
		return key{int(math.Floor(s.X / cell)), int(math.Floor(s.Y / cell))}
	}
	for i, s := range shots {
		buckets[keyOf(s)] = append(buckets[keyOf(s)], i)
	}
	minGapPx := minSpacingNM / dxNM
	var out []MRCViolation
	for i, a := range shots {
		k := keyOf(a)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				for _, j := range buckets[key{k.cx + dx, k.cy + dy}] {
					if j <= i {
						continue
					}
					b := shots[j]
					d := math.Hypot(a.X-b.X, a.Y-b.Y)
					gap := d - a.R - b.R
					if gap > 0 && gap < minGapPx {
						out = append(out, MRCViolation{
							Shot: i,
							Reason: fmt.Sprintf("gap %.1f nm to shot %d below minimum spacing %.1f nm",
								gap*dxNM, j, minSpacingNM),
						})
					}
				}
			}
		}
	}
	return out
}
