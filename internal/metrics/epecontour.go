package metrics

import (
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
)

// EPEMeasurement is one contour-based edge-placement sample.
type EPEMeasurement struct {
	XNM, YNM  float64 // sample position on the target edge
	ErrorNM   float64 // unsigned distance from the edge to the printed contour
	Violation bool    // ErrorNM > constraint, or wrong polarity at the point
}

// EPEContour measures edge placement against the sub-pixel printed
// contour (marching squares) instead of probing two offset pixels: for
// every sample point on a target edge, the distance to the nearest printed
// contour segment is the edge placement error. This is the higher-fidelity
// measurement; EPEViolations remains the fast ICCAD-style check, and the
// two agree on clean prints (see tests).
func EPEContour(l *layout.Layout, zNom *grid.Real, spacingNM, constraintNM float64) []EPEMeasurement {
	n := zNom.W
	dx := float64(l.TileNM) / float64(n)
	contours := geom.Contours(zNom, 0.5)
	targetRaster := l.Rasterize(n)

	inPrint := func(xNM, yNM float64) bool {
		px, py := int(xNM/dx), int(yNM/dx)
		if px < 0 || px >= n || py < 0 || py >= n {
			return false
		}
		return zNom.Data[py*n+px] > 0.5
	}
	inTarget := func(xNM, yNM float64) bool {
		px, py := int(xNM/dx), int(yNM/dx)
		if px < 0 || px >= n || py < 0 || py >= n {
			return false
		}
		return targetRaster.Data[py*n+px] > 0.5
	}

	var out []EPEMeasurement
	sample := func(x, y, nx, ny float64) {
		// Skip interior edges, as in EPEViolations.
		if inTarget(x+nx*constraintNM/2, y+ny*constraintNM/2) {
			return
		}
		d := geom.DistanceToContours(contours, geom.PtF{X: x/dx - 0.5, Y: y/dx - 0.5}) * dx
		// Polarity: the point half a constraint inside must print; if the
		// feature is missing entirely the distance may be large or +Inf.
		inside := inPrint(x-nx*(constraintNM+dx/2), y-ny*(constraintNM+dx/2))
		violation := d > constraintNM || !inside
		out = append(out, EPEMeasurement{XNM: x, YNM: y, ErrorNM: d, Violation: violation})
	}
	for _, r := range l.Rects {
		x0, y0 := float64(r.X), float64(r.Y)
		x1, y1 := float64(r.X+r.W), float64(r.Y+r.H)
		for s := spacingNM / 2; s < float64(r.W); s += spacingNM {
			sample(x0+s, y0, 0, -1)
			sample(x0+s, y1, 0, 1)
		}
		for s := spacingNM / 2; s < float64(r.H); s += spacingNM {
			sample(x0, y0+s, -1, 0)
			sample(x1, y0+s, 1, 0)
		}
	}
	return out
}

// CountEPEViolations tallies the violating measurements.
func CountEPEViolations(ms []EPEMeasurement) int {
	n := 0
	for _, m := range ms {
		if m.Violation {
			n++
		}
	}
	return n
}
