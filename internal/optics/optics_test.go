package optics

import (
	"math"
	"math/cmplx"
	"testing"
)

// smallConfig is a physically meaningful but cheap condition for tests: a
// 512 nm tile keeps the frequency support to a handful of bins.
func smallConfig() Config {
	c := Default()
	c.TileNM = 512
	c.NumKernels = 8
	return c
}

func TestValidate(t *testing.T) {
	good := Default()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{TileNM: 0, Wavelength: 193, NA: 1.35, SigmaIn: 0.5, SigmaOut: 0.8, NumKernels: 4},
		{TileNM: 2048, Wavelength: -1, NA: 1.35, SigmaIn: 0.5, SigmaOut: 0.8, NumKernels: 4},
		{TileNM: 2048, Wavelength: 193, NA: 0, SigmaIn: 0.5, SigmaOut: 0.8, NumKernels: 4},
		{TileNM: 2048, Wavelength: 193, NA: 1.35, SigmaIn: 0.8, SigmaOut: 0.5, NumKernels: 4},
		{TileNM: 2048, Wavelength: 193, NA: 1.35, SigmaIn: 0.5, SigmaOut: 1.2, NumKernels: 4},
		{TileNM: 2048, Wavelength: 193, NA: 1.35, SigmaIn: 0.5, SigmaOut: 0.8, NumKernels: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
}

func TestPupilCutoff(t *testing.T) {
	c := smallConfig()
	bins := c.pupilBins()
	if p := c.pupil(0, 0, false); p != 1 {
		t.Fatalf("pupil at DC = %v, want 1", p)
	}
	if p := c.pupil(bins+1, 0, false); p != 0 {
		t.Fatalf("pupil beyond cutoff = %v, want 0", p)
	}
	// Defocus keeps unit magnitude inside the pupil.
	if m := cmplx.Abs(c.pupil(bins/2, 0, true)); math.Abs(m-1) > 1e-12 {
		t.Fatalf("defocused pupil magnitude = %v, want 1", m)
	}
	// Defocus phase at DC is zero.
	if p := c.pupil(0, 0, true); cmplx.Abs(p-1) > 1e-12 {
		t.Fatalf("defocused pupil at DC = %v, want 1", p)
	}
}

func TestSourcePointsInsideAnnulus(t *testing.T) {
	c := Default()
	pts := c.sourcePoints()
	if len(pts) == 0 {
		t.Fatal("no source points")
	}
	rIn := c.SigmaIn * c.pupilBins()
	rOut := c.SigmaOut * c.pupilBins()
	for _, p := range pts {
		r := math.Hypot(float64(p[0]), float64(p[1]))
		if r < rIn-1e-9 || r > rOut+1e-9 {
			t.Fatalf("source point %v outside annulus [%g, %g]", p, rIn, rOut)
		}
	}
	if len(pts) > 120 {
		t.Fatalf("source thinning failed: %d points", len(pts))
	}
}

func TestSourcePointsDegenerateAnnulus(t *testing.T) {
	// A tile so small the annulus covers no bin must still return a sample.
	c := Default()
	c.TileNM = 64
	pts := c.sourcePoints()
	if len(pts) == 0 {
		t.Fatal("degenerate annulus produced no source points")
	}
}

func TestComputeKernelsBasics(t *testing.T) {
	set, err := ComputeKernels(smallConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Kernels) == 0 {
		t.Fatal("no kernels")
	}
	// Weights positive and descending.
	for i, k := range set.Kernels {
		if k.Weight <= 0 {
			t.Fatalf("kernel %d weight %g not positive", i, k.Weight)
		}
		if i > 0 && k.Weight > set.Kernels[i-1].Weight+1e-12 {
			t.Fatalf("weights not descending at %d", i)
		}
	}
	// Clear-field normalization: Σ λ_k |H_k(0)|² == 1.
	clear := 0.0
	for _, k := range set.Kernels {
		h0 := k.At(0, 0)
		clear += k.Weight * (real(h0)*real(h0) + imag(h0)*imag(h0))
	}
	if math.Abs(clear-1) > 1e-9 {
		t.Fatalf("clear-field intensity %g, want 1", clear)
	}
}

func TestKernelAtOutsideSupportIsZero(t *testing.T) {
	set, err := ComputeKernels(smallConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	k := set.Kernels[0]
	if v := k.At(k.Half+1, 0); v != 0 {
		t.Fatalf("At beyond support = %v", v)
	}
	if v := k.At(0, -k.Half-5); v != 0 {
		t.Fatalf("At beyond support = %v", v)
	}
}

// The SOCS identity: with all kernels kept, Σ_k λ_k H_k(f1) conj(H_k(f2))
// must reproduce the Hopkins TCC at every frequency pair.
func TestSOCSReconstructsTCC(t *testing.T) {
	c := smallConfig()
	c.NumKernels = 1 << 20 // keep everything
	set, err := ComputeKernels(c, false)
	if err != nil {
		t.Fatal(err)
	}
	src := c.sourcePoints()
	js := 1 / float64(len(src))

	// Undo the clear-field rescale to compare against the raw TCC.
	clearRaw := 0.0
	tcc := func(f1x, f1y, f2x, f2y int) complex128 {
		var s complex128
		for _, p := range src {
			a := c.pupil(float64(f1x+p[0]), float64(f1y+p[1]), false)
			b := c.pupil(float64(f2x+p[0]), float64(f2y+p[1]), false)
			s += a * complex(real(b), -imag(b)) * complex(js, 0)
		}
		return s
	}
	clearRaw = real(tcc(0, 0, 0, 0))

	pairs := [][4]int{{0, 0, 0, 0}, {1, 0, 0, 0}, {1, 2, -1, 0}, {2, -2, 1, 1}, {0, 3, 0, -3}}
	for _, p := range pairs {
		var socs complex128
		for _, k := range set.Kernels {
			h1 := k.At(p[0], p[1])
			h2 := k.At(p[2], p[3])
			socs += complex(k.Weight, 0) * h1 * complex(real(h2), -imag(h2))
		}
		want := tcc(p[0], p[1], p[2], p[3]) / complex(clearRaw, 0)
		if cmplx.Abs(socs-want) > 1e-8 {
			t.Errorf("TCC mismatch at %v: socs %v vs hopkins %v", p, socs, want)
		}
	}
}

func TestDefocusChangesKernels(t *testing.T) {
	c := smallConfig()
	focus, err := ComputeKernels(c, false)
	if err != nil {
		t.Fatal(err)
	}
	defoc, err := ComputeKernels(c, true)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	n := len(focus.Kernels)
	if len(defoc.Kernels) < n {
		n = len(defoc.Kernels)
	}
	for i := 0; i < n; i++ {
		for j := range focus.Kernels[i].Coef {
			diff += cmplx.Abs(focus.Kernels[i].Coef[j] - defoc.Kernels[i].Coef[j])
		}
	}
	if diff < 1e-6 {
		t.Fatal("defocus kernel set identical to focus set")
	}
}

func TestComputeKernelsRejectsInvalid(t *testing.T) {
	c := Default()
	c.NA = -1
	if _, err := ComputeKernels(c, false); err == nil {
		t.Fatal("expected error for invalid config")
	}
}
