// Package optics constructs the partially-coherent imaging kernels the
// lithography simulator consumes. It replaces the pre-baked optical kernel
// files shipped with the ICCAD-2013 contest kit by computing them from
// first principles: a circular pupil with optional defocus aberration, an
// annular illumination source, the Hopkins transmission cross coefficient
// (TCC) assembled on the discrete frequency support of the tile, and a
// sum-of-coherent-systems (SOCS) decomposition obtained from the Gram
// matrix of the source-shifted pupils.
//
// All spatial quantities are in nanometers and all frequencies are handled
// as integer bins of the tile's discrete Fourier grid (bin = f · TileNM),
// which makes kernels independent of the pixel resolution chosen for
// simulation: the same physical tile sampled at 1 nm/px or 8 nm/px shares
// one kernel set.
package optics

import (
	"fmt"
	"math"
	"sync"

	"cfaopc/internal/linalg"
)

// Config describes one imaging condition.
type Config struct {
	TileNM     float64 // physical tile edge length in nm (square tiles)
	Wavelength float64 // exposure wavelength in nm (193 for ArF immersion)
	NA         float64 // numerical aperture
	SigmaIn    float64 // annular source inner radius, fraction of NA
	SigmaOut   float64 // annular source outer radius, fraction of NA
	DefocusNM  float64 // defocus distance used by the defocus kernel set
	NumKernels int     // SOCS kernels to keep (K)

	// MaxSourcePoints bounds the number of discrete source samples used to
	// assemble the TCC; larger annuli are thinned by striding. Zero means
	// the package default.
	MaxSourcePoints int
}

// Default returns the imaging condition used throughout the reproduction:
// ArF immersion (λ=193 nm, NA=1.35) with 0.5–0.8 annular illumination on a
// 2048 nm tile, 24 SOCS kernels, 25 nm defocus corner.
func Default() Config {
	return Config{
		TileNM:     2048,
		Wavelength: 193,
		NA:         1.35,
		SigmaIn:    0.5,
		SigmaOut:   0.8,
		DefocusNM:  25,
		NumKernels: 24,
	}
}

// Validate checks the configuration for physical and numeric sanity.
func (c Config) Validate() error {
	switch {
	case c.TileNM <= 0:
		return fmt.Errorf("optics: TileNM must be positive, got %g", c.TileNM)
	case c.Wavelength <= 0:
		return fmt.Errorf("optics: Wavelength must be positive, got %g", c.Wavelength)
	case c.NA <= 0:
		return fmt.Errorf("optics: NA must be positive, got %g", c.NA)
	case c.SigmaIn < 0 || c.SigmaOut <= c.SigmaIn || c.SigmaOut > 1:
		return fmt.Errorf("optics: need 0 ≤ SigmaIn < SigmaOut ≤ 1, got [%g, %g]", c.SigmaIn, c.SigmaOut)
	case c.NumKernels <= 0:
		return fmt.Errorf("optics: NumKernels must be positive, got %d", c.NumKernels)
	}
	return nil
}

// pupilBins returns the pupil cutoff NA/λ expressed in frequency bins.
func (c Config) pupilBins() float64 { return c.NA / c.Wavelength * c.TileNM }

// Kernel is one coherent system of the SOCS decomposition, stored as its
// frequency-domain coefficients on the compact support window
// |binX|,|binY| ≤ Half. Values outside the window are zero.
type Kernel struct {
	Weight float64      // TCC eigenvalue λ_k
	Half   int          // support half-width in bins
	Coef   []complex128 // (2·Half+1)² row-major, index [(by+Half)·(2Half+1) + bx+Half]
}

// At returns the kernel spectrum at signed frequency bins (bx, by).
func (k *Kernel) At(bx, by int) complex128 {
	if bx < -k.Half || bx > k.Half || by < -k.Half || by > k.Half {
		return 0
	}
	s := 2*k.Half + 1
	return k.Coef[(by+k.Half)*s+bx+k.Half]
}

// KernelSet is a complete SOCS decomposition for one focus condition.
type KernelSet struct {
	Cfg     Config
	Defocus bool // true if the defocus aberration was applied
	Kernels []Kernel
}

// pupil evaluates the (possibly defocused) pupil function at signed
// frequency bins (bx, by): unit transmission inside NA/λ, zero outside,
// with the exact high-NA defocus phase 2π·z·(√(1/λ² − f²) − 1/λ).
func (c Config) pupil(bx, by float64, defocus bool) complex128 {
	r := math.Hypot(bx, by)
	if r > c.pupilBins() {
		return 0
	}
	if !defocus || c.DefocusNM == 0 {
		return 1
	}
	f := r / c.TileNM // cycles per nm
	invL := 1 / c.Wavelength
	arg := invL*invL - f*f
	if arg < 0 {
		arg = 0
	}
	phase := 2 * math.Pi * c.DefocusNM * (math.Sqrt(arg) - invL)
	return complex(math.Cos(phase), math.Sin(phase))
}

// sourcePoints samples the annular source on the frequency-bin grid,
// thinning with a stride when the annulus holds more than the configured
// maximum. Each returned point carries equal weight; the caller normalizes.
func (c Config) sourcePoints() [][2]int {
	rOut := c.SigmaOut * c.pupilBins()
	rIn := c.SigmaIn * c.pupilBins()
	lim := int(math.Ceil(rOut))
	var pts [][2]int
	for by := -lim; by <= lim; by++ {
		for bx := -lim; bx <= lim; bx++ {
			r := math.Hypot(float64(bx), float64(by))
			if r >= rIn && r <= rOut {
				pts = append(pts, [2]int{bx, by})
			}
		}
	}
	if len(pts) == 0 {
		// Degenerate annulus thinner than one bin (tiny test tiles): fall
		// back to the nearest ring of bins, or the DC point.
		mid := (rIn + rOut) / 2
		best := math.Inf(1)
		for by := -lim - 1; by <= lim+1; by++ {
			for bx := -lim - 1; bx <= lim+1; bx++ {
				d := math.Abs(math.Hypot(float64(bx), float64(by)) - mid)
				if d < best {
					best = d
					pts = pts[:0]
					pts = append(pts, [2]int{bx, by})
				} else if d == best {
					pts = append(pts, [2]int{bx, by})
				}
			}
		}
	}
	max := c.MaxSourcePoints
	if max <= 0 {
		max = 120
	}
	if len(pts) > max {
		stride := (len(pts) + max - 1) / max
		thinned := pts[:0]
		for i := 0; i < len(pts); i += stride {
			thinned = append(thinned, pts[i])
		}
		pts = thinned
	}
	return pts
}

var (
	kernelCacheMu sync.Mutex
	kernelCache   = map[kernelKey]*KernelSet{}
)

type kernelKey struct {
	cfg     Config
	defocus bool
}

// CachedKernels returns the SOCS kernel set for cfg, memoizing by the full
// configuration value. The decomposition costs ~0.1 s at production scale,
// and multi-resolution engines request the same physical condition
// repeatedly, so callers should prefer this over ComputeKernels.
func CachedKernels(cfg Config, defocus bool) (*KernelSet, error) {
	key := kernelKey{cfg: cfg, defocus: defocus}
	kernelCacheMu.Lock()
	if set, ok := kernelCache[key]; ok {
		kernelCacheMu.Unlock()
		return set, nil
	}
	kernelCacheMu.Unlock()
	set, err := ComputeKernels(cfg, defocus)
	if err != nil {
		return nil, err
	}
	kernelCacheMu.Lock()
	kernelCache[key] = set
	kernelCacheMu.Unlock()
	return set, nil
}

// ComputeKernels builds the SOCS kernel set for the configuration. With
// defocus true, the pupil carries the DefocusNM aberration (the "defocus"
// process-corner kernels); otherwise it is the nominal in-focus set.
//
// The decomposition solves the Hermitian eigenproblem of the source Gram
// matrix G = B†B, where column s of B is the pupil shifted by source point
// s restricted to the tile's frequency support; the left singular vectors
// B·w/√λ are exactly the TCC eigenfunctions. Kernels are globally rescaled
// so that a fully clear mask images to unit intensity under the kept K
// kernels, keeping the resist threshold meaningful for any K.
func ComputeKernels(cfg Config, defocus bool) (*KernelSet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := cfg.sourcePoints()
	ns := len(src)

	// Frequency support: the pupil shifted by any source point lives within
	// (1+σout)·NA/λ of DC.
	half := int(math.Ceil((1 + cfg.SigmaOut) * cfg.pupilBins()))
	side := 2*half + 1
	nf := side * side

	// B[f, s] = P(f + f0_s) / √ns.
	b := make([]complex128, nf*ns)
	wsrc := complex(1/math.Sqrt(float64(ns)), 0)
	for fi := 0; fi < nf; fi++ {
		fy := fi/side - half
		fx := fi%side - half
		for s, p := range src {
			b[fi*ns+s] = cfg.pupil(float64(fx+p[0]), float64(fy+p[1]), defocus) * wsrc
		}
	}

	// Gram matrix G = B†B (ns×ns Hermitian).
	g := make([]complex128, ns*ns)
	for i := 0; i < ns; i++ {
		for j := i; j < ns; j++ {
			var s complex128
			for fi := 0; fi < nf; fi++ {
				bi := b[fi*ns+i]
				s += complex(real(bi), -imag(bi)) * b[fi*ns+j]
			}
			g[i*ns+j] = s
			g[j*ns+i] = complex(real(s), -imag(s))
		}
	}

	vals, vecs := linalg.HermEig(g, ns)
	k := cfg.NumKernels
	if k > ns {
		k = ns
	}

	set := &KernelSet{Cfg: cfg, Defocus: defocus}
	for ki := 0; ki < k; ki++ {
		lam := vals[ki]
		if lam < 1e-12 {
			break // numerically zero modes carry no energy
		}
		coef := make([]complex128, nf)
		inv := complex(1/math.Sqrt(lam), 0)
		for fi := 0; fi < nf; fi++ {
			var s complex128
			for sj := 0; sj < ns; sj++ {
				s += b[fi*ns+sj] * vecs[sj*ns+ki]
			}
			coef[fi] = s * inv
		}
		set.Kernels = append(set.Kernels, Kernel{Weight: lam, Half: half, Coef: coef})
	}
	if len(set.Kernels) == 0 {
		return nil, fmt.Errorf("optics: decomposition produced no kernels")
	}

	// Clear-field normalization: scale weights so Σ λ_k |H_k(0)|² = 1.
	clear := 0.0
	for i := range set.Kernels {
		h0 := set.Kernels[i].At(0, 0)
		clear += set.Kernels[i].Weight * (real(h0)*real(h0) + imag(h0)*imag(h0))
	}
	if clear <= 0 {
		return nil, fmt.Errorf("optics: clear-field intensity is zero; cannot normalize")
	}
	for i := range set.Kernels {
		set.Kernels[i].Weight /= clear
	}
	return set, nil
}
