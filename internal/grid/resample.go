package grid

import "fmt"

// DownsampleBox reduces g by an integer factor using box (area) averaging.
// The grid dimensions must be divisible by factor.
func DownsampleBox(g *Real, factor int) *Real {
	if factor <= 0 || g.W%factor != 0 || g.H%factor != 0 {
		panic(fmt.Sprintf("grid: cannot downsample %dx%d by %d", g.W, g.H, factor))
	}
	w, h := g.W/factor, g.H/factor
	out := NewReal(w, h)
	inv := 1.0 / float64(factor*factor)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := 0.0
			for dy := 0; dy < factor; dy++ {
				row := (y*factor + dy) * g.W
				for dx := 0; dx < factor; dx++ {
					s += g.Data[row+x*factor+dx]
				}
			}
			out.Data[y*w+x] = s * inv
		}
	}
	return out
}

// UpsampleBilinear enlarges g by an integer factor using bilinear
// interpolation between source pixel centers.
func UpsampleBilinear(g *Real, factor int) *Real {
	if factor <= 0 {
		panic(fmt.Sprintf("grid: invalid upsample factor %d", factor))
	}
	w, h := g.W*factor, g.H*factor
	out := NewReal(w, h)
	f := float64(factor)
	for y := 0; y < h; y++ {
		// Map destination pixel center back into source coordinates.
		sy := (float64(y)+0.5)/f - 0.5
		y0 := int(sy)
		if sy < 0 {
			y0 = 0
			sy = 0
		}
		if y0 > g.H-2 {
			y0 = g.H - 2
			if y0 < 0 {
				y0 = 0
			}
		}
		y1 := y0 + 1
		if y1 >= g.H {
			y1 = g.H - 1
		}
		wy := sy - float64(y0)
		if wy < 0 {
			wy = 0
		} else if wy > 1 {
			wy = 1
		}
		for x := 0; x < w; x++ {
			sx := (float64(x)+0.5)/f - 0.5
			x0 := int(sx)
			if sx < 0 {
				x0 = 0
				sx = 0
			}
			if x0 > g.W-2 {
				x0 = g.W - 2
				if x0 < 0 {
					x0 = 0
				}
			}
			x1 := x0 + 1
			if x1 >= g.W {
				x1 = g.W - 1
			}
			wx := sx - float64(x0)
			if wx < 0 {
				wx = 0
			} else if wx > 1 {
				wx = 1
			}
			v00 := g.Data[y0*g.W+x0]
			v01 := g.Data[y0*g.W+x1]
			v10 := g.Data[y1*g.W+x0]
			v11 := g.Data[y1*g.W+x1]
			top := v00 + (v01-v00)*wx
			bot := v10 + (v11-v10)*wx
			out.Data[y*w+x] = top + (bot-top)*wy
		}
	}
	return out
}

// UpsampleNearest enlarges g by an integer factor with nearest-neighbour
// replication; useful for binary masks where interpolation would blur.
func UpsampleNearest(g *Real, factor int) *Real {
	if factor <= 0 {
		panic(fmt.Sprintf("grid: invalid upsample factor %d", factor))
	}
	w, h := g.W*factor, g.H*factor
	out := NewReal(w, h)
	for y := 0; y < h; y++ {
		src := (y / factor) * g.W
		dst := y * w
		for x := 0; x < w; x++ {
			out.Data[dst+x] = g.Data[src+x/factor]
		}
	}
	return out
}
