package grid

import (
	"math"
	"testing"
)

func TestUpsampleBilinearGradientRamp(t *testing.T) {
	// A linear ramp must stay linear (bilinear interpolation is exact on
	// affine functions away from the clamped borders).
	g := NewReal(8, 1)
	for x := 0; x < 8; x++ {
		g.Set(x, 0, float64(x))
	}
	u := UpsampleBilinear(g, 4)
	// Interior samples: value at pixel p maps back to (p+0.5)/4 − 0.5.
	for p := 8; p < 24; p++ {
		want := (float64(p)+0.5)/4 - 0.5
		for y := 0; y < 4; y++ {
			if math.Abs(u.At(p, y)-want) > 1e-9 {
				t.Fatalf("ramp at %d = %v, want %v", p, u.At(p, y), want)
			}
		}
	}
}

func TestUpsampleBilinearPanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	UpsampleBilinear(NewReal(2, 2), 0)
}

func TestUpsampleNearestPanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	UpsampleNearest(NewReal(2, 2), -1)
}

func TestDownsampleIdentityFactorOne(t *testing.T) {
	g := NewReal(3, 3)
	for i := range g.Data {
		g.Data[i] = float64(i)
	}
	d := DownsampleBox(g, 1)
	if d.SqDiff(g) != 0 {
		t.Fatal("factor-1 box downsample not identity")
	}
}
