// Package grid provides dense, row-major 2D arrays of real and complex
// values, plus the elementwise and resampling operations the lithography
// and ILT packages are built on.
//
// Grids are deliberately simple value containers: W columns by H rows, with
// Data[y*W+x] addressing. All operations that combine grids require equal
// dimensions and panic otherwise — dimension mismatches are programmer
// errors, not runtime conditions.
package grid

import (
	"fmt"
	"math"
)

// Real is a dense H×W grid of float64 values in row-major order.
type Real struct {
	W, H int
	Data []float64
}

// NewReal allocates a zeroed W×H real grid.
func NewReal(w, h int) *Real {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%d", w, h))
	}
	return &Real{W: w, H: h, Data: make([]float64, w*h)}
}

// At returns the value at column x, row y.
func (g *Real) At(x, y int) float64 { return g.Data[y*g.W+x] }

// Set stores v at column x, row y.
func (g *Real) Set(x, y int, v float64) { g.Data[y*g.W+x] = v }

// Idx returns the flat index of (x, y).
func (g *Real) Idx(x, y int) int { return y*g.W + x }

// In reports whether (x, y) lies inside the grid.
func (g *Real) In(x, y int) bool { return x >= 0 && x < g.W && y >= 0 && y < g.H }

// Clone returns a deep copy of g.
func (g *Real) Clone() *Real {
	c := NewReal(g.W, g.H)
	copy(c.Data, g.Data)
	return c
}

// Fill sets every element to v.
func (g *Real) Fill(v float64) {
	for i := range g.Data {
		g.Data[i] = v
	}
}

func (g *Real) sameShape(o *Real) {
	if g.W != o.W || g.H != o.H {
		panic(fmt.Sprintf("grid: shape mismatch %dx%d vs %dx%d", g.W, g.H, o.W, o.H))
	}
}

// Add sets g = g + o elementwise and returns g.
func (g *Real) Add(o *Real) *Real {
	g.sameShape(o)
	for i, v := range o.Data {
		g.Data[i] += v
	}
	return g
}

// Sub sets g = g - o elementwise and returns g.
func (g *Real) Sub(o *Real) *Real {
	g.sameShape(o)
	for i, v := range o.Data {
		g.Data[i] -= v
	}
	return g
}

// Mul sets g = g ⊙ o elementwise and returns g.
func (g *Real) Mul(o *Real) *Real {
	g.sameShape(o)
	for i, v := range o.Data {
		g.Data[i] *= v
	}
	return g
}

// Scale multiplies every element by s and returns g.
func (g *Real) Scale(s float64) *Real {
	for i := range g.Data {
		g.Data[i] *= s
	}
	return g
}

// AddScaled sets g = g + s·o elementwise and returns g.
func (g *Real) AddScaled(o *Real, s float64) *Real {
	g.sameShape(o)
	for i, v := range o.Data {
		g.Data[i] += s * v
	}
	return g
}

// Sum returns the sum of all elements.
func (g *Real) Sum() float64 {
	s := 0.0
	for _, v := range g.Data {
		s += v
	}
	return s
}

// Dot returns the elementwise inner product Σ g⊙o.
func (g *Real) Dot(o *Real) float64 {
	g.sameShape(o)
	s := 0.0
	for i, v := range g.Data {
		s += v * o.Data[i]
	}
	return s
}

// SqDiff returns Σ (g-o)², the squared L2 distance between the grids.
func (g *Real) SqDiff(o *Real) float64 {
	g.sameShape(o)
	s := 0.0
	for i, v := range g.Data {
		d := v - o.Data[i]
		s += d * d
	}
	return s
}

// MaxAbs returns the maximum absolute element value (0 for empty data).
func (g *Real) MaxAbs() float64 {
	m := 0.0
	for _, v := range g.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// CountAbove returns the number of elements strictly greater than t.
func (g *Real) CountAbove(t float64) int {
	n := 0
	for _, v := range g.Data {
		if v > t {
			n++
		}
	}
	return n
}

// Binarize returns a new grid with 1 where g > t and 0 elsewhere.
func (g *Real) Binarize(t float64) *Real {
	b := NewReal(g.W, g.H)
	for i, v := range g.Data {
		if v > t {
			b.Data[i] = 1
		}
	}
	return b
}

// HasNaN reports whether any element is NaN or infinite.
func (g *Real) HasNaN() bool {
	for _, v := range g.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// Complex is a dense H×W grid of complex128 values in row-major order.
type Complex struct {
	W, H int
	Data []complex128
}

// NewComplex allocates a zeroed W×H complex grid.
func NewComplex(w, h int) *Complex {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%d", w, h))
	}
	return &Complex{W: w, H: h, Data: make([]complex128, w*h)}
}

// At returns the value at column x, row y.
func (g *Complex) At(x, y int) complex128 { return g.Data[y*g.W+x] }

// Set stores v at column x, row y.
func (g *Complex) Set(x, y int, v complex128) { g.Data[y*g.W+x] = v }

// Clone returns a deep copy of g.
func (g *Complex) Clone() *Complex {
	c := NewComplex(g.W, g.H)
	copy(c.Data, g.Data)
	return c
}

// MulPointwise sets g = g ⊙ o elementwise and returns g.
func (g *Complex) MulPointwise(o *Complex) *Complex {
	if g.W != o.W || g.H != o.H {
		panic(fmt.Sprintf("grid: shape mismatch %dx%d vs %dx%d", g.W, g.H, o.W, o.H))
	}
	for i, v := range o.Data {
		g.Data[i] *= v
	}
	return g
}

// MulConj sets g = g ⊙ conj(o) elementwise and returns g.
func (g *Complex) MulConj(o *Complex) *Complex {
	if g.W != o.W || g.H != o.H {
		panic(fmt.Sprintf("grid: shape mismatch %dx%d vs %dx%d", g.W, g.H, o.W, o.H))
	}
	for i, v := range o.Data {
		g.Data[i] *= complex(real(v), -imag(v))
	}
	return g
}

// Scale multiplies every element by s and returns g.
func (g *Complex) Scale(s complex128) *Complex {
	for i := range g.Data {
		g.Data[i] *= s
	}
	return g
}

// FromReal returns a complex grid whose real parts are copied from r.
func FromReal(r *Real) *Complex {
	c := NewComplex(r.W, r.H)
	for i, v := range r.Data {
		c.Data[i] = complex(v, 0)
	}
	return c
}

// RealPart returns a real grid holding the real components of c.
func RealPart(c *Complex) *Real {
	r := NewReal(c.W, c.H)
	for i, v := range c.Data {
		r.Data[i] = real(v)
	}
	return r
}

// AbsSq returns a real grid holding |c|² per element.
func AbsSq(c *Complex) *Real {
	r := NewReal(c.W, c.H)
	for i, v := range c.Data {
		re, im := real(v), imag(v)
		r.Data[i] = re*re + im*im
	}
	return r
}
