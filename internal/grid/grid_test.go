package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRealAccessors(t *testing.T) {
	g := NewReal(4, 3)
	if g.W != 4 || g.H != 3 || len(g.Data) != 12 {
		t.Fatalf("bad dimensions: %+v", g)
	}
	g.Set(2, 1, 7.5)
	if got := g.At(2, 1); got != 7.5 {
		t.Fatalf("At(2,1) = %v, want 7.5", got)
	}
	if g.Idx(2, 1) != 6 {
		t.Fatalf("Idx(2,1) = %d, want 6", g.Idx(2, 1))
	}
	if !g.In(3, 2) || g.In(4, 2) || g.In(-1, 0) || g.In(0, 3) {
		t.Fatal("In() boundary checks wrong")
	}
}

func TestNewRealPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewReal(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			NewReal(dims[0], dims[1])
		}()
	}
}

func TestElementwiseOps(t *testing.T) {
	a := NewReal(2, 2)
	b := NewReal(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	copy(b.Data, []float64{10, 20, 30, 40})

	c := a.Clone().Add(b)
	want := []float64{11, 22, 33, 44}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("Add[%d] = %v, want %v", i, c.Data[i], want[i])
		}
	}
	d := b.Clone().Sub(a)
	if d.Data[3] != 36 {
		t.Fatalf("Sub[3] = %v, want 36", d.Data[3])
	}
	e := a.Clone().Mul(b)
	if e.Data[2] != 90 {
		t.Fatalf("Mul[2] = %v, want 90", e.Data[2])
	}
	f := a.Clone().Scale(0.5)
	if f.Data[1] != 1 {
		t.Fatalf("Scale[1] = %v, want 1", f.Data[1])
	}
	g := a.Clone().AddScaled(b, 0.1)
	if math.Abs(g.Data[0]-2) > 1e-12 {
		t.Fatalf("AddScaled[0] = %v, want 2", g.Data[0])
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a := NewReal(2, 2)
	b := NewReal(3, 2)
	defer func() {
		if recover() == nil {
			t.Error("Add with mismatched shapes did not panic")
		}
	}()
	a.Add(b)
}

func TestReductions(t *testing.T) {
	g := NewReal(2, 2)
	copy(g.Data, []float64{1, -2, 3, -4})
	if got := g.Sum(); got != -2 {
		t.Fatalf("Sum = %v, want -2", got)
	}
	if got := g.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
	if got := g.CountAbove(0.5); got != 2 {
		t.Fatalf("CountAbove(0.5) = %d, want 2", got)
	}
	o := NewReal(2, 2)
	copy(o.Data, []float64{1, 1, 1, 1})
	if got := g.Dot(o); got != -2 {
		t.Fatalf("Dot = %v, want -2", got)
	}
	if got := g.SqDiff(o); got != 0+9+4+25 {
		t.Fatalf("SqDiff = %v, want 38", got)
	}
}

func TestBinarize(t *testing.T) {
	g := NewReal(3, 1)
	copy(g.Data, []float64{0.1, 0.5, 0.9})
	b := g.Binarize(0.5)
	want := []float64{0, 0, 1}
	for i := range want {
		if b.Data[i] != want[i] {
			t.Fatalf("Binarize[%d] = %v, want %v", i, b.Data[i], want[i])
		}
	}
}

func TestHasNaN(t *testing.T) {
	g := NewReal(2, 1)
	if g.HasNaN() {
		t.Fatal("zero grid reported NaN")
	}
	g.Data[1] = math.NaN()
	if !g.HasNaN() {
		t.Fatal("NaN not detected")
	}
	g.Data[1] = math.Inf(1)
	if !g.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestComplexOps(t *testing.T) {
	a := NewComplex(2, 1)
	b := NewComplex(2, 1)
	a.Set(0, 0, 1+2i)
	a.Set(1, 0, 3-1i)
	b.Set(0, 0, 2i)
	b.Set(1, 0, 1+1i)

	c := a.Clone().MulPointwise(b)
	if c.At(0, 0) != (1+2i)*(2i) {
		t.Fatalf("MulPointwise = %v", c.At(0, 0))
	}
	d := a.Clone().MulConj(b)
	if d.At(1, 0) != (3-1i)*(1-1i) {
		t.Fatalf("MulConj = %v", d.At(1, 0))
	}
	e := a.Clone().Scale(2)
	if e.At(0, 0) != 2+4i {
		t.Fatalf("Scale = %v", e.At(0, 0))
	}
}

func TestRealComplexConversion(t *testing.T) {
	r := NewReal(2, 2)
	copy(r.Data, []float64{1, 2, 3, 4})
	c := FromReal(r)
	back := RealPart(c)
	for i := range r.Data {
		if back.Data[i] != r.Data[i] {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, back.Data[i], r.Data[i])
		}
	}
	c.Set(0, 0, 3+4i)
	sq := AbsSq(c)
	if math.Abs(sq.At(0, 0)-25) > 1e-12 {
		t.Fatalf("AbsSq = %v, want 25", sq.At(0, 0))
	}
}

func TestDownsampleBox(t *testing.T) {
	g := NewReal(4, 4)
	for i := range g.Data {
		g.Data[i] = float64(i)
	}
	d := DownsampleBox(g, 2)
	if d.W != 2 || d.H != 2 {
		t.Fatalf("downsampled dims %dx%d", d.W, d.H)
	}
	// Top-left box holds 0,1,4,5 → mean 2.5.
	if d.At(0, 0) != 2.5 {
		t.Fatalf("box(0,0) = %v, want 2.5", d.At(0, 0))
	}
	if d.At(1, 1) != (10.0+11+14+15)/4 {
		t.Fatalf("box(1,1) = %v", d.At(1, 1))
	}
}

func TestDownsamplePanicsOnNonDivisible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-divisible downsample")
		}
	}()
	DownsampleBox(NewReal(5, 4), 2)
}

func TestUpsampleNearest(t *testing.T) {
	g := NewReal(2, 1)
	copy(g.Data, []float64{1, 2})
	u := UpsampleNearest(g, 2)
	want := []float64{1, 1, 2, 2, 1, 1, 2, 2}
	for i := range want {
		if u.Data[i] != want[i] {
			t.Fatalf("nearest[%d] = %v, want %v", i, u.Data[i], want[i])
		}
	}
}

func TestUpsampleBilinearConstant(t *testing.T) {
	g := NewReal(3, 3)
	g.Fill(7)
	u := UpsampleBilinear(g, 4)
	for i, v := range u.Data {
		if math.Abs(v-7) > 1e-12 {
			t.Fatalf("bilinear of constant grid not constant at %d: %v", i, v)
		}
	}
}

// Property: box-downsampling preserves the grid mean exactly.
func TestDownsamplePreservesMean(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewReal(8, 8)
		for i := range g.Data {
			g.Data[i] = rng.Float64()*10 - 5
		}
		d := DownsampleBox(g, 2)
		meanG := g.Sum() / float64(len(g.Data))
		meanD := d.Sum() / float64(len(d.Data))
		return math.Abs(meanG-meanD) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: upsample(nearest) then downsample(box) is the identity.
func TestUpDownRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewReal(6, 5)
		for i := range g.Data {
			g.Data[i] = rng.Float64()
		}
		r := DownsampleBox(UpsampleNearest(g, 3), 3)
		for i := range g.Data {
			if math.Abs(r.Data[i]-g.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
