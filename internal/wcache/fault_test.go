package wcache

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cfaopc/internal/geom"
	"cfaopc/internal/iox"
)

func faultEntry(n int) *Entry {
	e := &Entry{Path: "primary", Attempts: 1, Iters: 8, LastLoss: 0.25}
	for i := 0; i < n; i++ {
		e.Shots = append(e.Shots, geom.Circle{X: float64(i), Y: float64(i * 2), R: 3})
	}
	return e
}

// TestPutNeverFailsUnderDiskFaults: every fault kind on the disk tier
// degrades the entry to the memory tier — Put has no error to return,
// Get still hits from memory, and the counters record the degradation.
func TestPutNeverFailsUnderDiskFaults(t *testing.T) {
	for _, kind := range []string{"enospc", "eio-sync", "torn", "rename"} {
		t.Run(kind, func(t *testing.T) {
			plan, err := iox.PlanForKind(kind)
			if err != nil {
				t.Fatal(err)
			}
			// Fire on the very first faultable op so a single Put trips it.
			plan.WriteBudget = min64(plan.WriteBudget, 8)
			if plan.FailSyncAt > 0 {
				plan.FailSyncAt = 1
			}
			if plan.TornWriteAt > 0 {
				plan.TornWriteAt = 1
			}
			dir := t.TempDir()
			ff := iox.NewFaultFS(nil, plan)
			c, err := New(Config{Dir: dir, FS: ff})
			if err != nil {
				t.Fatal(err)
			}
			k := Key("deadbeef")
			c.Put(k, faultEntry(4))
			got, ok := c.Get(k)
			if !ok || len(got.Shots) != 4 {
				t.Fatalf("memory tier lost the entry under %s", kind)
			}
			st := c.Stats()
			if st.DiskErrs != 1 || st.LastDiskErr == "" {
				t.Fatalf("degradation not counted under %s: %+v", kind, st)
			}
			// The failed write must not leave a readable half-entry: a
			// fresh cache over the same dir treats the key as a miss or a
			// fully valid hit, never garbage.
			c2, err := New(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if e2, ok := c2.Get(k); ok {
				if err := e2.Validate(); err != nil {
					t.Fatalf("disk served an invalid entry under %s: %v", kind, err)
				}
			}
		})
	}
}

func min64(a, b int64) int64 {
	if a == 0 || b < a {
		return b
	}
	return a
}

// TestDiskEntrySurvivesRename confirms the atomic-write path leaves no
// temp litter and the renamed entry round-trips.
func TestDiskEntryAtomicWriteRoundtrip(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	k := Key("cafe")
	c.Put(k, faultEntry(2))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if filepath.Ext(de.Name()) == ".tmp" {
			t.Fatalf("temp litter %s", de.Name())
		}
	}
	c2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := c2.Get(k); !ok || len(e.Shots) != 2 {
		t.Fatal("disk entry did not round-trip")
	}
}

// TestStorageFaultMatrix drives a realistic Put/Get mix under the CI
// storage-fault matrix. Invariant: no operation fails (the disk tier is
// best-effort by contract), the memory tier stays authoritative, and
// any disk file a later cache reads back is fully valid.
func TestStorageFaultMatrix(t *testing.T) {
	kind := os.Getenv("IOFAULT")
	if kind == "" {
		t.Skip("IOFAULT not set; run via the storage-fault matrix")
	}
	plan, err := iox.PlanForKind(kind)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ff := iox.NewFaultFS(nil, plan)
	c, err := New(Config{Dir: dir, FS: ff})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, 20)
	for i := range keys {
		keys[i] = Key(fmt.Sprintf("%04x", i))
		c.Put(keys[i], faultEntry(i%5+1))
	}
	for i, k := range keys {
		e, ok := c.Get(k)
		if !ok {
			t.Fatalf("memory tier lost key %d under %s", i, kind)
		}
		if len(e.Shots) != i%5+1 {
			t.Fatalf("entry %d corrupted under %s", i, kind)
		}
	}
	if ff.Stats().Injected == 0 {
		t.Fatalf("plan %s never fired; matrix is not exercising faults", kind)
	}
	// Cold cache over the same dir: disk survivors must be valid, torn
	// files must degrade to misses (and be deleted), never wrong data.
	c2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if e, ok := c2.Get(k); ok {
			if len(e.Shots) != i%5+1 {
				t.Fatalf("disk tier served wrong entry %d under %s", i, kind)
			}
		}
	}
	t.Logf("%s: %+v cold-stats %+v", kind, c.Stats(), c2.Stats())
}
