// Package wcache is the window dedup cache: real mask layouts are
// massively repetitive (memory arrays, std-cell rows), and the tiled
// flow re-optimizes every window from scratch even when hundreds of
// windows are pixel-identical. This package keys each optimized window
// by a canonical content hash — the window target raster, the owning
// rect spans normalized to window-local coordinates, the core geometry,
// and the flow's engine/optics/tiling config fingerprint — so a tile
// whose content already ran anywhere on the grid is answered by
// translating the cached window-local shots into place instead of
// re-optimizing.
//
// Storage is a two-tier affair: an in-memory LRU bounded by entry count
// and bytes, plus an optional on-disk store (one CRC-guarded gob file
// per key, written atomically via temp + rename, exactly the framing
// internal/quarantine uses) so caches survive runs and can be shared
// across processes. A corrupted, torn, or short disk entry always
// degrades to a miss — never to a wrong tile — and is deleted so the
// next run rewrites it.
//
// The cache is correctness-critical only in the negative sense: the
// flow must be byte-identical with the cache on or off. That holds
// because the key covers every input the optimizer sees (raster, spans,
// core box, config fingerprint), the optimizer chain is deterministic,
// and translation by an integer pixel offset is exact in float64.
package wcache

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"math"
	"path/filepath"
	"sync"

	"cfaopc/internal/geom"
	"cfaopc/internal/iox"
)

var magic = []byte("CFWC1\n")

// keyVersion is folded into every hash so a change to the canonical
// encoding can never collide with keys from an older scheme. Bumping it
// invalidates all persisted caches; the golden-pin test exists so that
// only happens on purpose.
const keyVersion = "cfaopc-wkey-v1"

// MaxEntryBytes bounds a disk entry payload so a corrupt length prefix
// cannot demand an absurd allocation during load.
const MaxEntryBytes = 64 << 20

// Key is the hex-encoded canonical content hash of one window.
type Key string

// Span is one owning rectangle's half-open pixel footprint in
// window-local coordinates, mirroring layout.Span without importing it
// (wcache stays a leaf below layout-consuming packages).
type Span struct{ X0, X1, Y0, Y1 int }

// WindowDesc is everything about one tile window that the optimizer's
// output depends on, in window-local coordinates. Two windows with
// equal descriptors produce byte-identical shots under a deterministic
// engine, which is exactly the claim TestCacheDeterminism enforces.
type WindowDesc struct {
	W, H   int       // window dims in pixels
	Raster []float64 // row-major target, len W·H; hashed as a bitmap (v > 0.5)
	Spans  []Span    // canonical owning-rect spans (layout.WindowSpans output)
	// Core box, window-local: shots whose centers land here are owned.
	CoreX, CoreY, CoreW, CoreH int
}

// WindowKey hashes a window descriptor plus the flow's config
// fingerprint into the canonical cache key. The prefix must cover every
// config knob that can change the optimizer's output (engines, optics,
// grid scale, retry/validation policy); the flow derives it from the
// same fingerprint machinery that binds checkpoint journals.
func WindowKey(prefix string, d WindowDesc) Key {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.BigEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	h.Write([]byte(keyVersion))
	writeInt(len(prefix))
	h.Write([]byte(prefix))
	writeInt(d.W)
	writeInt(d.H)
	writeInt(d.CoreX)
	writeInt(d.CoreY)
	writeInt(d.CoreW)
	writeInt(d.CoreH)
	// Raster as a packed bitmap: the optimizer sees a binary target, so
	// the key must too — 0.99 vs 1.0 foreground encodes identically.
	writeInt(len(d.Raster))
	var acc byte
	var nbits int
	for _, v := range d.Raster {
		acc <<= 1
		if v > 0.5 {
			acc |= 1
		}
		nbits++
		if nbits == 8 {
			h.Write([]byte{acc})
			acc, nbits = 0, 0
		}
	}
	if nbits > 0 {
		h.Write([]byte{acc << (8 - nbits)})
	}
	writeInt(len(d.Spans))
	for _, s := range d.Spans {
		writeInt(s.X0)
		writeInt(s.X1)
		writeInt(s.Y0)
		writeInt(s.Y1)
	}
	return Key(fmt.Sprintf("%x", h.Sum(nil)))
}

// Entry is one cached optimization result: the full window-local shot
// list (pre-ownership-filter, so any twin window can re-filter for its
// own core) plus the attempt record the twin inherits for stats.
type Entry struct {
	Shots    []geom.Circle // window-local coordinates
	Path     string        // "primary" or "fallback"
	Attempts int
	Iters    int
	LastLoss float64
}

// Validate rejects entries no healthy run could have produced; it backs
// the load path so even a CRC-clean-but-nonsensical file becomes a miss.
func (e *Entry) Validate() error {
	if e.Path == "" {
		return fmt.Errorf("wcache: entry has no path")
	}
	for _, s := range e.Shots {
		if math.IsNaN(s.X) || math.IsNaN(s.Y) || math.IsNaN(s.R) ||
			math.IsInf(s.X, 0) || math.IsInf(s.Y, 0) || math.IsInf(s.R, 0) {
			return fmt.Errorf("wcache: entry shot is not finite")
		}
	}
	return nil
}

// bytes estimates an entry's resident size for the LRU byte budget.
func (e *Entry) bytes() int64 {
	return 96 + int64(len(e.Shots))*24 + int64(len(e.Path))
}

// Config sizes the cache. Zero values get sane defaults; Dir == ""
// means memory-only.
type Config struct {
	MaxEntries int    // in-memory LRU entry budget (default 4096)
	MaxBytes   int64  // in-memory LRU byte budget (default 256 MiB)
	Dir        string // on-disk store directory; "" disables the disk tier
	FS         iox.FS // filesystem seam for the disk tier; nil = real filesystem
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits      int64 // Get successes (memory or disk)
	DiskHits  int64 // subset of Hits served by promoting a disk entry
	Misses    int64 // Get failures
	Puts      int64
	Evictions int64
	BadDisk   int64 // corrupt/torn disk entries degraded to a miss
	DiskErrs  int64 // best-effort disk writes that failed
	Entries   int   // current in-memory entries
	Bytes     int64 // current in-memory bytes
	// LastDiskErr is the most recent disk-tier failure, "" when the
	// tier is healthy. Purely diagnostic: every disk fault already
	// degraded to the memory tier by the time it is recorded here.
	LastDiskErr string
}

type lruItem struct {
	key   Key
	entry *Entry
	size  int64
}

// Cache is the two-tier window result cache. All methods are safe for
// concurrent use; disk I/O happens outside the lock so tile workers
// never serialize on each other's reads.
type Cache struct {
	cfg  Config
	fsys iox.FS

	mu    sync.Mutex
	ll    *list.List
	items map[Key]*list.Element
	bytes int64
	stats Stats
}

// New builds a cache, creating the disk directory when one is set.
func New(cfg Config) (*Cache, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 4096
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 256 << 20
	}
	fsys := iox.OrOS(cfg.FS)
	if cfg.Dir != "" {
		if err := fsys.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("wcache: %w", err)
		}
	}
	return &Cache{cfg: cfg, fsys: fsys, ll: list.New(), items: make(map[Key]*list.Element)}, nil
}

// Dir returns the disk tier directory ("" when memory-only).
func (c *Cache) Dir() string { return c.cfg.Dir }

func (c *Cache) path(k Key) string {
	return filepath.Join(c.cfg.Dir, string(k)+".wce")
}

// Get returns the cached entry for k. The memory tier is checked first;
// on a memory miss with a disk tier configured, the disk entry is
// loaded, verified, promoted into memory, and returned. Any disk
// verification failure deletes the bad file and reports a miss.
func (c *Cache) Get(k Key) (*Entry, bool) {
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*lruItem).entry
		c.stats.Hits++
		c.mu.Unlock()
		return e, true
	}
	c.mu.Unlock()

	if c.cfg.Dir == "" {
		c.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	e, err := loadEntry(c.fsys, c.path(k))
	if err != nil {
		if !iox.IsNotExist(err) {
			// Corrupt, torn, or nonsensical: degrade to a miss and
			// delete so the next Put heals the file.
			c.fsys.Remove(c.path(k))
			c.count(func(s *Stats) { s.BadDisk++; s.LastDiskErr = err.Error() })
		}
		c.count(func(s *Stats) { s.Misses++ })
		return nil, false
	}
	c.insert(k, e)
	c.count(func(s *Stats) { s.Hits++; s.DiskHits++ })
	return e, true
}

// Put stores e under k in the memory tier and, when configured, the
// disk tier. Disk writes are best-effort (a full disk must not fail the
// run) and atomic (temp + fsync + rename + parent-dir fsync), so
// readers never observe a torn file and a surviving file survives power
// loss. Put never fails: any disk fault degrades the entry to the
// memory tier and is counted in DiskErrs/LastDiskErr.
func (c *Cache) Put(k Key, e *Entry) {
	c.insert(k, e)
	c.count(func(s *Stats) { s.Puts++ })
	if c.cfg.Dir == "" {
		return
	}
	if err := writeEntry(c.fsys, c.path(k), e); err != nil {
		c.count(func(s *Stats) { s.DiskErrs++; s.LastDiskErr = err.Error() })
	}
}

func (c *Cache) insert(k Key, e *Entry) {
	size := e.bytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		it := el.Value.(*lruItem)
		c.bytes += size - it.size
		it.entry, it.size = e, size
		c.ll.MoveToFront(el)
	} else {
		c.items[k] = c.ll.PushFront(&lruItem{key: k, entry: e, size: size})
		c.bytes += size
	}
	c.evictLocked()
	c.stats.Entries = c.ll.Len()
	c.stats.Bytes = c.bytes
}

// evictLocked trims the memory tier to the configured budgets, always
// keeping at least one entry so a single oversized window still caches.
func (c *Cache) evictLocked() {
	for (c.ll.Len() > c.cfg.MaxEntries || c.bytes > c.cfg.MaxBytes) && c.ll.Len() > 1 {
		back := c.ll.Back()
		it := back.Value.(*lruItem)
		c.ll.Remove(back)
		delete(c.items, it.key)
		c.bytes -= it.size
		c.stats.Evictions++
	}
}

// Resize changes the memory-tier budgets at runtime and evicts down to
// them immediately. A non-positive argument leaves that budget
// unchanged. This is the pressure-shedding hook: a resource governor
// can shrink the tier when the heap crosses a watermark and restore it
// once pressure recedes. The disk tier is unaffected.
func (c *Cache) Resize(maxEntries int, maxBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if maxEntries > 0 {
		c.cfg.MaxEntries = maxEntries
	}
	if maxBytes > 0 {
		c.cfg.MaxBytes = maxBytes
	}
	c.evictLocked()
	c.stats.Entries = c.ll.Len()
	c.stats.Bytes = c.bytes
}

// Limits reports the current memory-tier budgets.
func (c *Cache) Limits() (maxEntries int, maxBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.MaxEntries, c.cfg.MaxBytes
}

func (c *Cache) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Bytes = c.bytes
	return s
}

// writeEntry frames a gob-encoded entry exactly like a quarantine
// bundle — magic, payload length, CRC32, payload — and writes it
// atomically and crash-durably.
func writeEntry(fsys iox.FS, path string, e *Entry) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(e); err != nil {
		return err
	}
	if payload.Len() > MaxEntryBytes {
		return fmt.Errorf("wcache: entry %d bytes exceeds limit", payload.Len())
	}
	framed := make([]byte, 0, len(magic)+8+payload.Len())
	framed = append(framed, magic...)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	framed = append(framed, hdr[:]...)
	framed = append(framed, payload.Bytes()...)
	return iox.AtomicWrite(fsys, path, framed, 0o644)
}

// loadEntry reads and fully verifies a disk entry. Every failure mode —
// bad magic, torn tail, length mismatch, CRC failure, gob rot,
// non-finite shots — comes back as an error the caller turns into a
// miss.
func loadEntry(fsys iox.FS, path string) (*Entry, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(magic)+8 || string(data[:len(magic)]) != string(magic) {
		return nil, fmt.Errorf("wcache: %s is not a cache entry (bad magic)", path)
	}
	ln := binary.BigEndian.Uint32(data[len(magic) : len(magic)+4])
	want := binary.BigEndian.Uint32(data[len(magic)+4 : len(magic)+8])
	if ln > MaxEntryBytes {
		return nil, fmt.Errorf("wcache: declared payload %d bytes exceeds limit", ln)
	}
	payload := data[len(magic)+8:]
	if uint32(len(payload)) != ln {
		return nil, fmt.Errorf("wcache: %s torn: %d payload bytes, header declares %d", path, len(payload), ln)
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("wcache: %s failed its CRC (bit rot or torn write)", path)
	}
	e := new(Entry)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(e); err != nil {
		return nil, fmt.Errorf("wcache: decode %s: %w", path, err)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}
