package wcache

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"cfaopc/internal/geom"
)

func testEntry(n int) *Entry {
	e := &Entry{Path: "primary", Attempts: 1, Iters: 7, LastLoss: 0.25}
	for i := 0; i < n; i++ {
		e.Shots = append(e.Shots, geom.Circle{X: float64(i) + 0.5, Y: float64(2 * i), R: 1.5})
	}
	return e
}

func key(s string) Key {
	return WindowKey("test-prefix", WindowDesc{W: 4, H: 4, Raster: make([]float64, 16),
		Spans: []Span{{0, 1, 0, 1}}, CoreX: 1, CoreY: 1, CoreW: 2, CoreH: 2}) + Key(s)
}

func TestMemoryHitMissAndStats(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key("a"), testEntry(3))
	e, ok := c.Get(key("a"))
	if !ok || len(e.Shots) != 3 {
		t.Fatalf("expected hit with 3 shots, got ok=%v e=%+v", ok, e)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 || s.Entries != 1 || s.Bytes <= 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLRUEvictionByEntries(t *testing.T) {
	c, err := New(Config{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key("a"), testEntry(1))
	c.Put(key("b"), testEntry(1))
	if _, ok := c.Get(key("a")); !ok { // refresh a so b is LRU
		t.Fatal("a missing")
	}
	c.Put(key("c"), testEntry(1))
	if _, ok := c.Get(key("b")); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get(key("a")); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.Get(key("c")); !ok {
		t.Fatal("c should be resident")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	small := testEntry(1)
	budget := 3 * small.bytes() // fits three small entries, not a big one plus two
	c, err := New(Config{MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key("a"), testEntry(1))
	c.Put(key("b"), testEntry(1))
	c.Put(key("big"), testEntry(500))
	// The oversized entry stays (never evict the only/newest down to zero
	// below one entry), everything older goes.
	if _, ok := c.Get(key("big")); !ok {
		t.Fatal("newest entry must be resident")
	}
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("a should have been evicted by the byte budget")
	}
	// Replacing a key in place adjusts the byte account instead of leaking.
	c2, _ := New(Config{})
	c2.Put(key("x"), testEntry(10))
	b1 := c2.Stats().Bytes
	c2.Put(key("x"), testEntry(2))
	if b2 := c2.Stats().Bytes; b2 >= b1 || c2.Stats().Entries != 1 {
		t.Fatalf("in-place update bytes %d -> %d entries %d", b1, b2, c2.Stats().Entries)
	}
}

func TestDiskRoundTripAcrossCaches(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := testEntry(5)
	c1.Put(key("k"), want)

	// A second cache over the same dir — the cross-process scenario.
	c2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key("k"))
	if !ok {
		t.Fatal("disk entry not found by fresh cache")
	}
	if len(got.Shots) != len(want.Shots) || got.Path != want.Path ||
		got.Attempts != want.Attempts || got.Iters != want.Iters || got.LastLoss != want.LastLoss {
		t.Fatalf("round trip mangled entry: %+v vs %+v", got, want)
	}
	for i := range got.Shots {
		if got.Shots[i] != want.Shots[i] {
			t.Fatalf("shot %d differs: %+v vs %+v", i, got.Shots[i], want.Shots[i])
		}
	}
	s := c2.Stats()
	if s.DiskHits != 1 || s.Hits != 1 {
		t.Fatalf("stats %+v", s)
	}
	// Second Get is served from memory (promoted).
	if _, ok := c2.Get(key("k")); !ok {
		t.Fatal("promoted entry missing")
	}
	if s := c2.Stats(); s.DiskHits != 1 || s.Hits != 2 {
		t.Fatalf("promotion stats %+v", s)
	}
}

// corrupt applies f to the stored bytes of key k in dir and reports the path.
func corrupt(t *testing.T, dir string, k Key, f func([]byte) []byte) string {
	t.Helper()
	path := filepath.Join(dir, string(k)+".wce")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCorruptDiskEntriesDegradeToMiss(t *testing.T) {
	cases := []struct {
		name string
		f    func([]byte) []byte
	}{
		{"bit-flip-payload", func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b }},
		{"bit-flip-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-3] }},
		{"truncated-header", func(b []byte) []byte { return b[:len(magic)+2] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"absurd-length", func(b []byte) []byte {
			b[len(magic)] = 0xff
			b[len(magic)+1] = 0xff
			b[len(magic)+2] = 0xff
			b[len(magic)+3] = 0xff
			return b
		}},
		{"garbage-gob", func(b []byte) []byte {
			// Valid frame, nonsense payload: recompute nothing, just zero
			// the payload so the CRC fails — then separately verify a
			// CRC-valid empty-path entry is also rejected below.
			for i := len(magic) + 8; i < len(b); i++ {
				b[i] = 0
			}
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := New(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			c.Put(key("k"), testEntry(4))
			path := corrupt(t, dir, key("k"), tc.f)

			fresh, err := New(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := fresh.Get(key("k")); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			s := fresh.Stats()
			if s.BadDisk != 1 || s.Misses != 1 {
				t.Fatalf("stats %+v", s)
			}
			// Self-heal: the bad file is gone, and a re-Put rewrites it.
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt file not deleted: %v", err)
			}
			fresh.Put(key("k"), testEntry(4))
			again, err := New(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := again.Get(key("k")); !ok {
				t.Fatal("healed entry not readable")
			}
		})
	}
}

func TestInvalidEntryRejectedOnLoad(t *testing.T) {
	// A structurally valid frame holding an entry Validate rejects (no
	// path) must degrade to a miss too.
	dir := t.TempDir()
	path := filepath.Join(dir, string(key("k"))+".wce")
	if err := writeEntry(nil, path, &Entry{}); err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key("k")); ok {
		t.Fatal("invalid entry served as a hit")
	}
	if s := c.Stats(); s.BadDisk != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestValidateRejectsNonFiniteShots(t *testing.T) {
	nan := testEntry(1)
	nan.Shots[0].R = math.NaN()
	if err := nan.Validate(); err == nil {
		t.Fatal("NaN shot validated")
	}
	inf := testEntry(1)
	inf.Shots[0].X = math.Inf(1)
	if err := inf.Validate(); err == nil {
		t.Fatal("Inf shot validated")
	}
	if err := testEntry(0).Validate(); err != nil {
		t.Fatalf("empty shot list should validate: %v", err)
	}
}

func TestNewBadDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Dir: filepath.Join(file, "sub")}); err == nil {
		t.Fatal("New over an un-creatable dir should fail")
	}
}

func TestMemoryOnlyMissDoesNotTouchDisk(t *testing.T) {
	c, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Dir() != "" {
		t.Fatalf("memory-only cache reports dir %q", c.Dir())
	}
	if _, ok := c.Get(key("nope")); ok {
		t.Fatal("hit from nowhere")
	}
	if s := c.Stats(); s.Misses != 1 || s.BadDisk != 0 {
		t.Fatalf("stats %+v", s)
	}
}

// TestResizeShrinksAndRestores pins the governor's shrink rung: Resize
// evicts immediately down to the new limits, Limits reports them, and
// restoring the original limits lets the cache grow again.
func TestResizeShrinksAndRestores(t *testing.T) {
	c, err := New(Config{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c", "d", "e", "f"} {
		c.Put(key(k), testEntry(1))
	}
	if s := c.Stats(); s.Entries != 6 {
		t.Fatalf("entries %d, want 6", s.Entries)
	}

	_, bytes0 := c.Limits() // byte limit as defaulted by New
	c.Resize(2, 0)          // shrink entry limit; byte limit unchanged
	if me, mb := c.Limits(); me != 2 || mb != bytes0 {
		t.Fatalf("Limits() = %d, %d after Resize(2, 0), want 2, %d", me, mb, bytes0)
	}
	if s := c.Stats(); s.Entries != 2 || s.Evictions != 4 {
		t.Fatalf("after shrink: %+v", s)
	}
	// LRU order holds: the two most recent keys survive.
	if _, ok := c.Get(key("f")); !ok {
		t.Fatal("newest key evicted by shrink")
	}
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("oldest key survived shrink")
	}

	c.Resize(8, 0) // restore
	for _, k := range []string{"g", "h", "i"} {
		c.Put(key(k), testEntry(1))
	}
	if s := c.Stats(); s.Entries != 5 {
		t.Fatalf("after restore: %+v", s)
	}

	// Byte-limit shrink evicts by bytes too, never below one entry.
	one := testEntry(1).bytes()
	c.Resize(0, one)
	if s := c.Stats(); s.Entries != 1 || s.Bytes > one {
		t.Fatalf("after byte shrink: %+v", s)
	}
	// Non-positive arguments leave both limits alone.
	c.Resize(0, 0)
	if me, mb := c.Limits(); me != 8 || mb != one {
		t.Fatalf("Limits() = %d, %d after no-op Resize", me, mb)
	}
}
