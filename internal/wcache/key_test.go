package wcache

import (
	"math/rand"
	"testing"
)

// goldenDesc is a fixed descriptor whose key is pinned below. If either
// the pin test or FuzzWindowKey's seed corpus changes behavior, the
// canonical encoding changed: every persisted disk cache is invalid and
// keyVersion must be bumped deliberately, not by accident.
func goldenDesc() WindowDesc {
	raster := make([]float64, 6*6)
	for _, i := range []int{7, 8, 9, 13, 14, 15, 21} {
		raster[i] = 1
	}
	raster[22] = 0.75 // binarized: hashes identically to 1.0
	return WindowDesc{
		W: 6, H: 6, Raster: raster,
		Spans: []Span{{X0: 1, X1: 4, Y0: 1, Y1: 3}, {X0: 3, X1: 5, Y0: 3, Y1: 4}},
		CoreX: 1, CoreY: 1, CoreW: 4, CoreH: 4,
	}
}

const goldenPrefix = "cfaopc-flow-test-prefix 0011223344556677"

// goldenKey is the pinned canonical key for (goldenPrefix, goldenDesc).
const goldenKey = Key("e7dc299043d378daf0638ad3482cc7e9d29bc66fc1e51f940f790050436db294")

func TestWindowKeyGoldenPin(t *testing.T) {
	got := WindowKey(goldenPrefix, goldenDesc())
	if got != goldenKey {
		t.Fatalf("canonical key encoding changed:\n got  %s\n want %s\n"+
			"If this is intentional, bump keyVersion and update the pin — persisted caches are invalid.", got, goldenKey)
	}
}

func TestWindowKeyBinarizesRaster(t *testing.T) {
	d := goldenDesc()
	base := WindowKey(goldenPrefix, d)
	d.Raster[22] = 1.0 // was 0.75; both are foreground
	if WindowKey(goldenPrefix, d) != base {
		t.Fatal("raster amplitude above threshold changed the key")
	}
	d.Raster[22] = 0.4 // drops below threshold: background now
	if WindowKey(goldenPrefix, d) == base {
		t.Fatal("flipping a pixel below threshold kept the key")
	}
}

func TestWindowKeySensitivity(t *testing.T) {
	base := WindowKey(goldenPrefix, goldenDesc())
	mutants := map[string]func() (string, WindowDesc){
		"prefix":  func() (string, WindowDesc) { return goldenPrefix + "x", goldenDesc() },
		"pixel":   func() (string, WindowDesc) { d := goldenDesc(); d.Raster[0] = 1; return goldenPrefix, d },
		"span-x1": func() (string, WindowDesc) { d := goldenDesc(); d.Spans[0].X1++; return goldenPrefix, d },
		"span-y0": func() (string, WindowDesc) { d := goldenDesc(); d.Spans[1].Y0--; return goldenPrefix, d },
		"span-drop": func() (string, WindowDesc) {
			d := goldenDesc()
			d.Spans = d.Spans[:1]
			return goldenPrefix, d
		},
		"core-x": func() (string, WindowDesc) { d := goldenDesc(); d.CoreX++; return goldenPrefix, d },
		"core-w": func() (string, WindowDesc) { d := goldenDesc(); d.CoreW--; return goldenPrefix, d },
	}
	for name, m := range mutants {
		prefix, d := m()
		if WindowKey(prefix, d) == base {
			t.Fatalf("perturbation %q did not change the key", name)
		}
	}
	// Dimension swap with identical pixel count must not collide: the
	// dims are hashed, not just the flattened raster.
	d := goldenDesc()
	d.W, d.H = 4, 9
	if WindowKey(goldenPrefix, d) == base {
		t.Fatal("reshaped raster collided")
	}
}

// FuzzWindowKey drives the two load-bearing properties of the key:
// determinism (equal inputs collide — this is what lets a translated
// twin window hit, since descriptors are already window-local) and
// sensitivity (any single bit of raster, span, core, or prefix flips
// the key).
func FuzzWindowKey(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(6), uint16(3), "prefix-a")
	f.Add(int64(42), uint8(1), uint8(1), uint16(0), "")
	f.Add(int64(7), uint8(32), uint8(9), uint16(500), "cfaopc-flow-v3 deadbeef")
	f.Fuzz(func(t *testing.T, seed int64, w8, h8 uint8, mut uint16, prefix string) {
		w := 1 + int(w8)%32
		h := 1 + int(h8)%32
		rng := rand.New(rand.NewSource(seed))
		d := WindowDesc{W: w, H: h, Raster: make([]float64, w*h)}
		for i := range d.Raster {
			if rng.Intn(3) == 0 {
				d.Raster[i] = 1
			}
		}
		for i, n := 0, rng.Intn(4); i < n; i++ {
			x0, y0 := rng.Intn(w), rng.Intn(h)
			d.Spans = append(d.Spans, Span{X0: x0, X1: x0 + 1 + rng.Intn(w-x0), Y0: y0, Y1: y0 + 1 + rng.Intn(h-y0)})
		}
		d.CoreX, d.CoreY = rng.Intn(w), rng.Intn(h)
		d.CoreW, d.CoreH = 1+rng.Intn(w-d.CoreX), 1+rng.Intn(h-d.CoreY)

		base := WindowKey(prefix, d)

		// Determinism: a deep copy built the same way hashes the same.
		cp := d
		cp.Raster = append([]float64(nil), d.Raster...)
		cp.Spans = append([]Span(nil), d.Spans...)
		if WindowKey(prefix, cp) != base {
			t.Fatal("equal descriptors produced different keys")
		}

		// Sensitivity: flip one raster pixel.
		i := int(mut) % len(d.Raster)
		cp.Raster[i] = 1 - cp.Raster[i]
		if WindowKey(prefix, cp) == base {
			t.Fatalf("pixel %d flip kept the key", i)
		}
		cp.Raster[i] = 1 - cp.Raster[i]

		// Sensitivity: perturb one span coordinate, or add a span when
		// there are none.
		if len(cp.Spans) > 0 {
			j := int(mut) % len(cp.Spans)
			cp.Spans[j].X1++
			if WindowKey(prefix, cp) == base {
				t.Fatalf("span %d perturbation kept the key", j)
			}
			cp.Spans[j].X1--
		} else {
			cp.Spans = []Span{{0, 1, 0, 1}}
			if WindowKey(prefix, cp) == base {
				t.Fatal("added span kept the key")
			}
			cp.Spans = nil
		}

		// Sensitivity: config fingerprint.
		if WindowKey(prefix+"\x00", d) == base {
			t.Fatal("prefix perturbation kept the key")
		}

		// Sensitivity: core geometry.
		cp.CoreY++
		if WindowKey(prefix, cp) == base {
			t.Fatal("core shift kept the key")
		}
	})
}
