// Package procpool is the process-isolation layer under the tiled
// flow's -proc-workers mode: a supervised worker subprocess speaks a
// length-prefixed, CRC32-guarded gob frame protocol on stdin/stdout —
// the same framing discipline internal/checkpoint uses on disk — and
// the supervisor side (Worker) turns everything the child does (hello,
// heartbeats, partial snapshots, replies, death) into one event stream.
//
// The package deliberately knows nothing about the flow: a Task payload
// is a quarantine.Bundle (the self-contained window encoding PR 4
// introduced for post-mortem repro, promoted here to a live wire
// format), and the Runner that executes it is injected by the caller.
// That keeps procpool a leaf below both internal/flow (which supervises
// workers) and internal/procworker (which serves them), so neither
// direction creates an import cycle.
package procpool

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MaxFrameBytes bounds one frame's payload: a corrupt or hostile length
// prefix must not demand an absurd allocation. It matches
// quarantine.MaxBundleBytes since a Task frame carries a bundle.
const MaxFrameBytes = 256 << 20

// ErrTornFrame marks a frame cut short: the stream ended inside the
// header or the declared payload. On a worker pipe this is the
// signature of process death mid-write.
var ErrTornFrame = errors.New("procpool: torn frame")

// ErrFrameTooBig marks a frame rejected by the MaxFrameBytes bound, on
// either side of the stream: a writer about to ship a payload the peer
// is contractually obliged to reject fails locally instead, and a
// reader seeing an oversized declared length refuses it before any
// allocation.
var ErrFrameTooBig = errors.New("procpool: frame exceeds MaxFrameBytes")

// ErrFrameCRC marks a fully-present frame whose payload fails its
// checksum — bit corruption on the pipe, or interleaved writes from a
// buggy sender.
var ErrFrameCRC = errors.New("procpool: frame CRC mismatch")

// WriteFrame writes one payload as
//
//	uint32 BE payload length | uint32 BE CRC32(IEEE, payload) | payload
//
// in a single Write call, so frames from one writer never interleave
// mid-frame (callers serializing at the frame level get atomic frames).
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("%w: payload %d bytes", ErrFrameTooBig, len(payload))
	}
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	_, err := w.Write(frame)
	return err
}

// ReadFrame reads one frame and returns its verified payload. io.EOF at
// a frame boundary is a clean end of stream; a stream ending mid-frame
// is ErrTornFrame, a checksum failure is ErrFrameCRC, and an oversized
// declared length is rejected before any allocation.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: short header: %w", ErrTornFrame, err)
	}
	ln := binary.BigEndian.Uint32(hdr[0:4])
	want := binary.BigEndian.Uint32(hdr[4:8])
	if ln > MaxFrameBytes {
		return nil, fmt.Errorf("%w: declared length %d bytes", ErrFrameTooBig, ln)
	}
	payload := make([]byte, ln)
	if n, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: %d of %d payload bytes: %w", ErrTornFrame, n, ln, err)
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, ErrFrameCRC
	}
	return payload, nil
}
