package procpool

import (
	"errors"
	"os"
	"os/exec"
	"testing"
	"time"
)

// TestHelloDeadlineKillsSilentPeer is the handshake-hardening
// regression: a process that starts but never speaks the protocol (here
// a bare sleep standing in for a wedged or misconfigured binary) must
// surface as a terminal ErrHelloTimeout exit within the hello deadline,
// not hang the slot until the much longer silence watchdog.
func TestHelloDeadlineKillsSilentPeer(t *testing.T) {
	cmd := exec.Command("sleep", "60")
	w, err := StartHello(cmd, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Kill()
	start := time.Now()
	select {
	case ev := <-w.Events():
		if ev.Kind != EvExit {
			t.Fatalf("event kind = %d, want EvExit", ev.Kind)
		}
		if !errors.Is(ev.Err, ErrHelloTimeout) {
			t.Fatalf("exit err = %v, want ErrHelloTimeout", ev.Err)
		}
		// Generous bound: the point is "milliseconds, not the 10s
		// silence default".
		if since := time.Since(start); since > 5*time.Second {
			t.Fatalf("hello timeout took %s", since)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("silent peer never surfaced as an exit event")
	}
}

// TestHelloDeadlineSparesHealthyWorker: a worker that completes the
// handshake in time must not be bitten by the disarmed deadline later,
// even when a task outlives the hello timeout.
func TestHelloDeadlineSparesHealthyWorker(t *testing.T) {
	self := startHelloTestWorker(t, 500*time.Millisecond)
	defer self.Close()
	awaitEvent(t, self, EvHello)
	// Wait out several hello windows, then dispatch: the reply must
	// still arrive (the deadline was cleared after the first frame).
	time.Sleep(1200 * time.Millisecond)
	if err := self.Send(testTask(7)); err != nil {
		t.Fatal(err)
	}
	ev := awaitEvent(t, self, EvReply)
	if ev.Reply.Index != 7 {
		t.Fatalf("reply index = %d", ev.Reply.Index)
	}
}

func startHelloTestWorker(t *testing.T, helloTimeout time.Duration) *Worker {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(self)
	cmd.Stderr = os.Stderr
	w, err := StartHello(cmd, helloTimeout)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
