package procpool

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, 1<<16),
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestFrameTorn(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello frame")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every proper prefix except the empty one is a torn frame; zero
	// bytes is a clean EOF (the boundary case a dead-before-writing
	// worker produces).
	for cut := 1; cut < len(full); cut++ {
		_, err := ReadFrame(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrTornFrame) {
			t.Fatalf("cut at %d: err = %v, want ErrTornFrame", cut, err)
		}
	}
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestFrameCRCFlip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("guarded payload")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for bit := 0; bit < 8; bit++ {
		corrupt := append([]byte(nil), data...)
		corrupt[10] ^= 1 << bit // flip inside the payload
		_, err := ReadFrame(bytes.NewReader(corrupt))
		if !errors.Is(err, ErrFrameCRC) {
			t.Fatalf("bit %d: err = %v, want ErrFrameCRC", bit, err)
		}
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	// A hostile header declaring a huge payload must be rejected before
	// any allocation is attempted — with the typed limit error, not a
	// torn-frame misdiagnosis.
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(MaxFrameBytes)+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversize declared length: err = %v, want ErrFrameTooBig", err)
	}
	// The write side enforces the same bound with the same typed error:
	// a payload the peer is obliged to reject must fail locally instead
	// of being shipped.
	if err := WriteFrame(io.Discard, make([]byte, MaxFrameBytes+1)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversize payload: WriteFrame err = %v, want ErrFrameTooBig", err)
	}
	// Nothing may reach the stream when the bound trips.
	var sink bytes.Buffer
	WriteFrame(&sink, make([]byte, MaxFrameBytes+1))
	if sink.Len() != 0 {
		t.Fatalf("rejected frame still wrote %d bytes", sink.Len())
	}
}

// FuzzProcFrame feeds arbitrary streams to ReadFrame: it must never
// panic or over-allocate, and any payload it accepts must carry a valid
// checksum (i.e. survive a re-frame round trip).
func FuzzProcFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, []byte("seed payload"))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4})
	f.Add(bytes.Repeat([]byte{0xFF}, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			payload, err := ReadFrame(r)
			if err != nil {
				return // torn, CRC, oversize, EOF: all fine, just no panic
			}
			var buf bytes.Buffer
			if err := WriteFrame(&buf, payload); err != nil {
				t.Fatalf("accepted payload fails re-framing: %v", err)
			}
			back, err := ReadFrame(&buf)
			if err != nil || !bytes.Equal(back, payload) {
				t.Fatalf("re-framed payload did not round-trip (err %v)", err)
			}
			if crc32.ChecksumIEEE(payload) != crc32.ChecksumIEEE(back) {
				t.Fatal("checksum drift across round trip")
			}
		}
	})
}
