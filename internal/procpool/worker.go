package procpool

import (
	"context"
	"io"
	"os"
	"sync"
	"syscall"
	"time"
)

// WorkerEnv marks a process as a tile worker. Supervisors set it to "1"
// in every child they spawn; binaries that can serve as their own
// worker (cmd/cfaopc, the flow test binary) branch on InWorker before
// doing anything else.
const WorkerEnv = "CFAOPC_TILE_WORKER"

// InWorker reports whether this process was spawned as a tile worker.
func InWorker() bool { return os.Getenv(WorkerEnv) == "1" }

// SelfKill terminates the current process with SIGKILL — no deferred
// cleanup, no reply frame, exactly what an OOM kill or a runtime fatal
// looks like from the supervisor's side. The deterministic fault
// harness (flow.Fault.Kill) uses it to script worker death mid-tile.
// It never returns.
func SelfKill() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // SIGKILL cannot be handled; this is unreachable
}

// pingEvery is the worker's liveness cadence while a task is in
// flight. Idle workers stay silent — the supervisor's watchdog only
// runs while it is waiting on a reply.
const pingEvery = 100 * time.Millisecond

// Sink receives the liveness and snapshot stream a running task emits;
// Serve forwards each call as one frame to the supervisor.
type Sink interface {
	Beat(index, iter int, loss float64)
	Partial(index int, s PartialState)
}

// Runner executes one task and returns its reply. The flow side
// (flow.ServeTask via a caller-built adapter) is injected rather than
// imported so procpool stays a leaf package.
type Runner func(ctx context.Context, t *Task, sink Sink) Reply

// frameSink forwards Beat/Partial calls as frames through a shared
// serialized writer.
type frameSink struct {
	send func(*Message) error
}

func (s frameSink) Beat(index, iter int, loss float64) {
	s.send(&Message{Beat: &Beat{Index: index, Iter: iter, Loss: loss}})
}

func (s frameSink) Partial(index int, p PartialState) {
	s.send(&Message{Partial: &Partial{Index: index, State: p}})
}

// Serve is the worker main loop: announce Hello, then read tasks off r
// one at a time, run each through the injected Runner while pinging,
// and write the reply to w. EOF on r is the supervisor's clean shutdown
// and returns nil; any other stream error is fatal to the worker.
func Serve(r io.Reader, w io.Writer, run Runner) error {
	var mu sync.Mutex
	send := func(m *Message) error {
		payload, err := EncodeMessage(m)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		return WriteFrame(w, payload)
	}
	if err := send(&Message{Hello: &Hello{Version: ProtocolVersion, PID: os.Getpid()}}); err != nil {
		return err
	}
	return serveTasks(r, send, run)
}

// ServeTasks is the worker task loop without the opening Hello — for
// transports whose handshake has already completed (internal/netpool's
// TCP sessions, where both sides exchanged Hello frames before the
// first task). Semantics otherwise match Serve.
func ServeTasks(r io.Reader, w io.Writer, run Runner) error {
	var mu sync.Mutex
	send := func(m *Message) error {
		payload, err := EncodeMessage(m)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		return WriteFrame(w, payload)
	}
	return serveTasks(r, send, run)
}

// serveTasks reads tasks one at a time, runs each through the Runner
// while pinging, and sends the reply through send.
func serveTasks(r io.Reader, send func(*Message) error, run Runner) error {
	for {
		payload, err := ReadFrame(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		m, err := DecodeMessage(payload)
		if err != nil {
			return err
		}
		if m.Task == nil {
			continue // tolerate non-task frames from future supervisors
		}
		stop := make(chan struct{})
		var pingers sync.WaitGroup
		pingers.Add(1)
		go func() {
			defer pingers.Done()
			t := time.NewTicker(pingEvery)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					send(&Message{Ping: &Ping{}})
				}
			}
		}()
		reply := run(context.Background(), m.Task, frameSink{send: send})
		close(stop)
		pingers.Wait()
		if err := send(&Message{Reply: &reply}); err != nil {
			return err
		}
	}
}
