package procpool

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"
)

// ErrHelloTimeout marks a worker that started but sent no Hello frame
// within the handshake deadline: the process is alive (or was) but is
// not speaking the protocol — a misconfigured binary, a wedged runtime
// init, or a peer that connected and went silent. The worker is killed
// and the error is delivered as the terminal EvExit, so the slot
// surfaces a dead handshake immediately instead of waiting for the
// (much longer) silence watchdog.
var ErrHelloTimeout = errors.New("procpool: no hello within handshake deadline")

// EventKind discriminates supervisor-side worker events.
type EventKind int

const (
	EvHello EventKind = iota
	EvPing
	EvBeat
	EvPartial
	EvReply
	// EvExit is the terminal event: the worker process died or its
	// output stream broke. Err is io.EOF for a clean exit, the framing
	// or decode error otherwise; no further events follow.
	EvExit
)

// Event is one occurrence on a worker's output stream. Exactly the
// field matching Kind is set (Err only for EvExit).
type Event struct {
	Kind    EventKind
	Hello   *Hello
	Beat    *Beat
	Partial *Partial
	Reply   *Reply
	Err     error
}

// Worker is a supervised tile-worker subprocess: frames in via Send,
// everything out — including death — via the Events stream. It does no
// policy (respawn, backoff, circuit-breaking live in the flow's
// supervisor); it only makes process life cycle observable.
type Worker struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser

	events chan Event
	done   chan struct{} // closed by Kill/Close: emit drops, reader unblocks
	dead   chan struct{} // closed after the process is reaped

	helloTimeout time.Duration // bound on the wait for the first (Hello) frame

	killOnce  sync.Once
	closeOnce sync.Once
}

// Start launches cmd as a tile worker: WorkerEnv=1 is forced into its
// environment, stdin/stdout become the frame pipes (wire stderr
// yourself for diagnostics), and a reader goroutine turns its output
// into Events. The first event from a healthy worker is EvHello.
func Start(cmd *exec.Cmd) (*Worker, error) { return StartHello(cmd, 0) }

// StartHello is Start with a deadline on the initial Hello exchange:
// when the worker's first frame does not arrive within helloTimeout,
// the process is killed and the terminal EvExit carries
// ErrHelloTimeout. Zero disables the deadline (Start's behavior); the
// deadline requires the stdout pipe to support read deadlines (it does
// on Linux), and is silently skipped otherwise — the caller's silence
// watchdog remains the backstop.
func StartHello(cmd *exec.Cmd, helloTimeout time.Duration) (*Worker, error) {
	if cmd.Env == nil {
		cmd.Env = os.Environ()
	}
	cmd.Env = append(cmd.Env, WorkerEnv+"=1")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("procpool: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("procpool: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("procpool: start worker: %w", err)
	}
	w := &Worker{
		cmd:          cmd,
		stdin:        stdin,
		events:       make(chan Event, 64),
		done:         make(chan struct{}),
		dead:         make(chan struct{}),
		helloTimeout: helloTimeout,
	}
	go w.read(stdout)
	return w, nil
}

// PID returns the worker's process id.
func (w *Worker) PID() int { return w.cmd.Process.Pid }

// Events is the worker's output stream. It is never closed; EvExit is
// the last event delivered.
func (w *Worker) Events() <-chan Event { return w.events }

// Send frames one task to the worker.
func (w *Worker) Send(t *Task) error {
	payload, err := EncodeMessage(&Message{Task: t})
	if err != nil {
		return err
	}
	return WriteFrame(w.stdin, payload)
}

// Kill terminates the worker immediately (SIGKILL) and stops event
// delivery. Idempotent; the reaping happens on the reader goroutine.
func (w *Worker) Kill() {
	w.killOnce.Do(func() {
		close(w.done)
		if w.cmd.Process != nil {
			w.cmd.Process.Kill()
		}
	})
}

// Close shuts the worker down gracefully: closing stdin makes Serve
// return nil, and the process is given a grace period to exit before
// being killed. Safe to call on an already-dead worker.
func (w *Worker) Close() {
	w.closeOnce.Do(func() {
		w.stdin.Close()
		select {
		case <-w.dead:
		case <-time.After(2 * time.Second):
			w.Kill()
			<-w.dead
		}
	})
}

// readDeadliner is the subset of os.File the hello deadline needs; the
// stdout pipe exec.Cmd hands out satisfies it on platforms with
// pollable pipes.
type readDeadliner interface {
	SetReadDeadline(t time.Time) error
}

// read decodes frames into events until the stream breaks, then reaps
// the process and delivers the terminal EvExit.
func (w *Worker) read(stdout io.Reader) {
	// Arm the handshake deadline: the first frame (the worker's Hello)
	// must land within helloTimeout. A peer that starts but never
	// speaks surfaces as ErrHelloTimeout instead of hanging the reader.
	helloArmed := false
	if w.helloTimeout > 0 {
		if d, ok := stdout.(readDeadliner); ok {
			helloArmed = d.SetReadDeadline(time.Now().Add(w.helloTimeout)) == nil
		}
	}
	var exitErr error
	for {
		payload, err := ReadFrame(stdout)
		if err != nil {
			if helloArmed && errors.Is(err, os.ErrDeadlineExceeded) {
				err = fmt.Errorf("%w (%s)", ErrHelloTimeout, w.helloTimeout)
			}
			exitErr = err // io.EOF for a clean exit
			break
		}
		if helloArmed {
			// Handshake complete (any first frame counts: a healthy
			// worker's first frame is its Hello): disarm the deadline so
			// long-running tasks read unbounded, as the silence watchdog
			// above owns liveness from here.
			helloArmed = false
			stdout.(readDeadliner).SetReadDeadline(time.Time{})
		}
		m, err := DecodeMessage(payload)
		if err != nil {
			exitErr = err
			break
		}
		switch {
		case m.Hello != nil:
			if m.Hello.Version != ProtocolVersion {
				exitErr = fmt.Errorf("procpool: worker speaks protocol v%d, supervisor v%d", m.Hello.Version, ProtocolVersion)
			} else {
				w.emit(Event{Kind: EvHello, Hello: m.Hello})
				continue
			}
		case m.Ping != nil:
			w.emit(Event{Kind: EvPing})
			continue
		case m.Beat != nil:
			w.emit(Event{Kind: EvBeat, Beat: m.Beat})
			continue
		case m.Partial != nil:
			w.emit(Event{Kind: EvPartial, Partial: m.Partial})
			continue
		case m.Reply != nil:
			w.emit(Event{Kind: EvReply, Reply: m.Reply})
			continue
		default:
			exitErr = fmt.Errorf("procpool: empty message from worker")
		}
		break
	}
	// A worker that sent garbage may still be alive; make death true
	// before reporting it.
	if exitErr != io.EOF {
		if w.cmd.Process != nil {
			w.cmd.Process.Kill()
		}
	}
	w.cmd.Wait()
	close(w.dead)
	w.emit(Event{Kind: EvExit, Err: exitErr})
}

// emit delivers ev unless the supervisor has abandoned this worker.
func (w *Worker) emit(ev Event) {
	select {
	case w.events <- ev:
	case <-w.done:
	}
}
