package procpool

import (
	"bytes"
	"context"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"cfaopc/internal/geom"
	"cfaopc/internal/quarantine"
)

// TestMain doubles as the worker binary: a supervisor-spawned copy of
// the test executable (WorkerEnv set by Start) serves the stub runner
// instead of running the test list — the same re-exec trick the flow
// package uses for its engine-backed workers.
func TestMain(m *testing.M) {
	if InWorker() {
		if err := Serve(os.Stdin, os.Stdout, stubRunner); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// killIndex is the tile index the stub runner treats as a scripted
// mid-task SIGKILL.
const killIndex = 666

// stubRunner echoes a primary-path reply after emitting one beat and
// one partial, except for killIndex which dies the way an OOM kill
// does: no reply frame, ever.
func stubRunner(_ context.Context, t *Task, sink Sink) Reply {
	if t.Bundle.Tile.Index == killIndex {
		SelfKill()
	}
	sink.Beat(t.Bundle.Tile.Index, 1, 0.5)
	sink.Partial(t.Bundle.Tile.Index, PartialState{Iter: 1, Params: []float64{1, 2}})
	return Reply{
		Index: t.Bundle.Tile.Index,
		Shots: []geom.Circle{{X: 1, Y: 2, R: 3}},
		Path:  "primary",
	}
}

func testTask(index int) *Task {
	return &Task{Bundle: quarantine.Bundle{Tile: quarantine.Tile{Index: index}}}
}

func startTestWorker(t *testing.T) *Worker {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(self)
	cmd.Stderr = os.Stderr
	w, err := Start(cmd)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// awaitEvent reads events until one of kind k arrives, failing the test
// on EvExit (unless that is what was asked for) or timeout.
func awaitEvent(t *testing.T, w *Worker, k EventKind) Event {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case ev := <-w.Events():
			if ev.Kind == k {
				return ev
			}
			if ev.Kind == EvExit {
				t.Fatalf("worker exited (err %v) while waiting for event kind %d", ev.Err, k)
			}
		case <-deadline:
			t.Fatalf("timed out waiting for event kind %d", k)
		}
	}
}

func TestWorkerLifecycle(t *testing.T) {
	w := startTestWorker(t)
	defer w.Close()

	hello := awaitEvent(t, w, EvHello)
	if hello.Hello.Version != ProtocolVersion {
		t.Fatalf("hello version = %d, want %d", hello.Hello.Version, ProtocolVersion)
	}
	if hello.Hello.PID != w.PID() {
		t.Fatalf("hello PID = %d, supervisor sees %d", hello.Hello.PID, w.PID())
	}

	if err := w.Send(testTask(7)); err != nil {
		t.Fatal(err)
	}
	beat := awaitEvent(t, w, EvBeat)
	if beat.Beat.Index != 7 || beat.Beat.Iter != 1 {
		t.Fatalf("beat = %+v", beat.Beat)
	}
	partial := awaitEvent(t, w, EvPartial)
	if partial.Partial.Index != 7 || len(partial.Partial.State.Params) != 2 {
		t.Fatalf("partial = %+v", partial.Partial)
	}
	reply := awaitEvent(t, w, EvReply)
	if reply.Reply.Index != 7 || reply.Reply.Path != "primary" || len(reply.Reply.Shots) != 1 {
		t.Fatalf("reply = %+v", reply.Reply)
	}

	// A second task on the same worker: the loop must survive.
	if err := w.Send(testTask(8)); err != nil {
		t.Fatal(err)
	}
	if reply := awaitEvent(t, w, EvReply); reply.Reply.Index != 8 {
		t.Fatalf("second reply index = %d", reply.Reply.Index)
	}

	// Close is the clean shutdown: EOF on stdin, worker exits cleanly.
	w.Close()
	ev := awaitEvent(t, w, EvExit)
	if ev.Err != io.EOF {
		t.Fatalf("clean shutdown exit err = %v, want io.EOF", ev.Err)
	}
}

func TestWorkerCrashMidTask(t *testing.T) {
	w := startTestWorker(t)
	defer w.Close()
	awaitEvent(t, w, EvHello)
	if err := w.Send(testTask(killIndex)); err != nil {
		t.Fatal(err)
	}
	ev := awaitEvent(t, w, EvExit)
	if ev.Err == nil || ev.Err == io.EOF {
		// SIGKILL before the reply can tear a frame or land exactly on a
		// boundary (EOF with no reply); either way Err must be non-nil …
		// except a boundary kill IS io.EOF. What matters is: no EvReply
		// arrived first, and the exit is terminal.
		if ev.Err == nil {
			t.Fatal("EvExit with nil error")
		}
	}
	// Kill after death must be safe and idempotent.
	w.Kill()
	w.Kill()
}

func TestWorkerKill(t *testing.T) {
	w := startTestWorker(t)
	awaitEvent(t, w, EvHello)
	w.Kill()
	// After Kill the events channel stops delivering; Close must not hang.
	done := make(chan struct{})
	go func() { w.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung after Kill")
	}
}

// TestServeInProcess drives Serve over in-memory pipes so the worker
// loop itself (not just the subprocess wrapper) shows up in coverage:
// hello first, beats and partials forwarded, reply per task, EOF = nil.
func TestServeInProcess(t *testing.T) {
	taskR, taskW := io.Pipe()   // supervisor → worker
	replyR, replyW := io.Pipe() // worker → supervisor

	served := make(chan error, 1)
	go func() { served <- Serve(taskR, replyW, stubRunner) }()

	readMsg := func() *Message {
		t.Helper()
		payload, err := ReadFrame(replyR)
		if err != nil {
			t.Fatalf("read worker frame: %v", err)
		}
		m, err := DecodeMessage(payload)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	if m := readMsg(); m.Hello == nil || m.Hello.Version != ProtocolVersion {
		t.Fatalf("first frame = %+v, want hello", m)
	}

	payload, err := EncodeMessage(&Message{Task: testTask(3)})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(taskW, payload); err != nil {
		t.Fatal(err)
	}

	var sawBeat, sawPartial bool
	for {
		m := readMsg()
		switch {
		case m.Ping != nil: // liveness while in flight; cadence untested
		case m.Beat != nil:
			sawBeat = true
		case m.Partial != nil:
			sawPartial = true
		case m.Reply != nil:
			if m.Reply.Index != 3 || m.Reply.Path != "primary" {
				t.Fatalf("reply = %+v", m.Reply)
			}
			if !sawBeat || !sawPartial {
				t.Fatalf("reply before forwarded stream (beat %v partial %v)", sawBeat, sawPartial)
			}
			taskW.Close() // EOF: clean shutdown
			if err := <-served; err != nil {
				t.Fatalf("Serve returned %v on clean EOF", err)
			}
			return
		default:
			t.Fatalf("unexpected frame %+v", m)
		}
	}
}

func TestDecodeMessageRejectsMalformed(t *testing.T) {
	if _, err := DecodeMessage([]byte("not a gob stream")); err == nil {
		t.Error("garbage payload decoded")
	}
	// The one-of invariant: exactly one field set.
	for name, m := range map[string]*Message{
		"empty":    {},
		"two-of":   {Ping: &Ping{}, Beat: &Beat{Index: 1}},
		"three-of": {Hello: &Hello{}, Ping: &Ping{}, Reply: &Reply{}},
	} {
		payload, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := DecodeMessage(payload); err == nil {
			t.Errorf("%s message accepted", name)
		}
	}
}

// fakeWorker starts a "worker" that just cats a crafted byte stream —
// the cheapest way to drive the supervisor's reader through protocol
// violations a real worker never commits.
func fakeWorker(t *testing.T, dir string, frames ...*Message) *Worker {
	t.Helper()
	var buf bytes.Buffer
	for _, m := range frames {
		payload, err := EncodeMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "stream")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Start(exec.Command("cat", path))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSupervisorRejectsWrongProtocolVersion(t *testing.T) {
	w := fakeWorker(t, t.TempDir(), &Message{Hello: &Hello{Version: ProtocolVersion + 1, PID: 1}})
	defer w.Close()
	ev := awaitEvent(t, w, EvExit)
	if ev.Err == nil || ev.Err == io.EOF {
		t.Fatalf("version mismatch exit err = %v, want protocol error", ev.Err)
	}
}

func TestSupervisorRejectsEmptyMessage(t *testing.T) {
	// An all-nil message violates the one-of invariant; the supervisor
	// must kill the stream rather than guess.
	w := fakeWorker(t, t.TempDir(),
		&Message{Hello: &Hello{Version: ProtocolVersion, PID: 1}},
		&Message{})
	defer w.Close()
	awaitEvent(t, w, EvHello)
	ev := awaitEvent(t, w, EvExit)
	if ev.Err == nil || ev.Err == io.EOF {
		t.Fatalf("empty message exit err = %v, want protocol error", ev.Err)
	}
}

func TestSupervisorRejectsGarbageStream(t *testing.T) {
	// A binary that is not a tile worker at all: its output fails frame
	// decoding and the worker surfaces as dead with a non-EOF error.
	w, err := Start(exec.Command("echo", "this is not a frame protocol"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ev := awaitEvent(t, w, EvExit)
	if ev.Err == nil || ev.Err == io.EOF {
		t.Fatalf("garbage stream exit err = %v, want framing error", ev.Err)
	}
}

// TestServeIgnoresNonTaskFrames: a worker must tolerate (skip) stray
// non-task frames from a future supervisor rather than die on them.
func TestServeIgnoresNonTaskFrames(t *testing.T) {
	taskR, taskW := io.Pipe()
	replyR, replyW := io.Pipe()
	served := make(chan error, 1)
	go func() { served <- Serve(taskR, replyW, stubRunner) }()

	send := func(m *Message) {
		t.Helper()
		payload, err := EncodeMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(taskW, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Drain the synchronous hello first or both sides of the unbuffered
	// pipes block: Serve writing hello, this test writing the ping.
	if payload, err := ReadFrame(replyR); err != nil {
		t.Fatal(err)
	} else if m, err := DecodeMessage(payload); err != nil || m.Hello == nil {
		t.Fatalf("first frame = %+v, err %v, want hello", m, err)
	}
	send(&Message{Ping: &Ping{}}) // not a task: skipped
	send(&Message{Task: testTask(9)})
	for {
		payload, err := ReadFrame(replyR)
		if err != nil {
			t.Fatal(err)
		}
		m, err := DecodeMessage(payload)
		if err != nil {
			t.Fatal(err)
		}
		if m.Reply != nil {
			if m.Reply.Index != 9 {
				t.Fatalf("reply index = %d", m.Reply.Index)
			}
			break
		}
	}
	taskW.Close()
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v on clean EOF", err)
	}
}

// TestServeSurfacesStreamErrors: a supervisor that writes garbage (or
// tears a frame) is fatal to the worker loop — Serve must return the
// decode error rather than spin.
func TestServeSurfacesStreamErrors(t *testing.T) {
	taskR, taskW := io.Pipe()
	replyR, replyW := io.Pipe()
	served := make(chan error, 1)
	go func() { served <- Serve(taskR, replyW, stubRunner) }()
	go io.Copy(io.Discard, replyR) // drain hello and anything after

	// Write from a goroutine: Serve may reject the header before
	// draining the rest, leaving an unbuffered-pipe write stranded.
	go func() {
		taskW.Write([]byte("garbage, not a frame at all"))
		taskW.Close()
	}()
	if err := <-served; err == nil || err == io.EOF {
		t.Fatalf("Serve on garbage stream = %v, want framing/decode error", err)
	}
}

// TestServeRejectsUndecodablePayload: a well-framed payload that is not
// a gob Message is equally fatal.
func TestServeRejectsUndecodablePayload(t *testing.T) {
	taskR, taskW := io.Pipe()
	replyR, replyW := io.Pipe()
	served := make(chan error, 1)
	go func() { served <- Serve(taskR, replyW, stubRunner) }()
	go io.Copy(io.Discard, replyR)

	if err := WriteFrame(taskW, []byte("framed but not gob")); err != nil {
		t.Fatal(err)
	}
	taskW.Close()
	if err := <-served; err == nil || err == io.EOF {
		t.Fatalf("Serve on undecodable payload = %v, want decode error", err)
	}
}

func TestSendAfterKillFails(t *testing.T) {
	w := startTestWorker(t)
	awaitEvent(t, w, EvHello)
	w.Kill()
	// Kill stops event delivery, so EvExit may be dropped — poll instead:
	// once the process is reaped the pipe breaks and Send must surface an
	// error, not panic or hang.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := w.Send(testTask(1)); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Send kept succeeding after Kill")
		}
		time.Sleep(10 * time.Millisecond)
	}
	w.Close()
}

func TestStartFailsForMissingBinary(t *testing.T) {
	if _, err := Start(exec.Command("/nonexistent/tileworker-binary")); err == nil {
		t.Fatal("Start of missing binary succeeded")
	}
}

// TestCloseKillsStubbornWorker: a worker that ignores stdin EOF (here:
// sleep, which never reads stdin) must be killed after the grace
// period; Close must return rather than hang.
func TestCloseKillsStubbornWorker(t *testing.T) {
	w, err := Start(exec.Command("sleep", "60"))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { w.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Close hung on a worker that ignores EOF")
	}
}
