package procpool

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"cfaopc/internal/geom"
	"cfaopc/internal/quarantine"
)

// ProtocolVersion is bumped whenever the message schema changes
// incompatibly; the supervisor rejects a worker whose Hello disagrees.
// v2 added the TCP handshake fields (Fingerprint, Reject) for
// internal/netpool's multi-host transport.
const ProtocolVersion = 2

// Hello is the handshake frame. On a stdin/stdout pipe only the worker
// sends one (version + liveness proof, before any task is accepted).
// Over TCP (internal/netpool) both sides speak: the coordinator's Hello
// opens the connection and carries the run's config fingerprint, and
// the worker's answer either echoes the accepted fingerprint or carries
// a Reject reason and closes — version skew and config skew fail the
// connection at the handshake, not mid-run.
type Hello struct {
	Version int
	PID     int
	// Fingerprint is the coordinator run's config fingerprint (the same
	// string that prefixes window dedup-cache keys). A listening worker
	// started with a fingerprint pin rejects a coordinator whose
	// fingerprint differs; the worker's reply echoes the fingerprint it
	// accepted. Empty on pipe workers.
	Fingerprint string
	// Reject is the worker's reason for refusing the handshake
	// (version skew, fingerprint pin mismatch). A non-empty Reject is
	// terminal: the worker closes the connection after sending it.
	Reject string
}

// Ping is a bare liveness frame the worker emits periodically while a
// task is in flight, so the supervisor's silence watchdog distinguishes
// a long-running tile from a wedged or dead process even when the
// optimizer itself emits no heartbeats.
type Ping struct{}

// PartialState is a resumable optimizer snapshot in wire form — the
// fields of the flow's partial checkpoint record (flat parameters plus
// Adam state) without importing the flow.
type PartialState struct {
	Attempt int
	Iter    int
	Loss    float64
	Params  []float64
	OptT    int
	OptM    []float64
	OptV    []float64
}

// Task asks a worker to run one window through the full degradation
// ladder. The window itself — target raster, optics, tiling knobs,
// engine metadata, injected-fault script — travels as a
// quarantine.Bundle: the repro-bundle encoding already proves a tile is
// fully serializable, so it doubles as the live wire format (the
// bundle's Attempts history is empty in a task; ValidateTask checks a
// task-grade bundle).
type Task struct {
	Bundle quarantine.Bundle
	// Dispatch counts how many times this tile has been handed to a
	// worker (0 on the first dispatch, +1 per crash-redispatch). It is
	// published on the attempt context so deterministic process-fatal
	// fault scripts (flow.Fault.Kill) stop firing after the scripted
	// number of kills.
	Dispatch int
	// Workers is the per-kernel litho parallelism inside the worker.
	Workers int
	// PartialEvery > 0 asks the worker to stream optimizer snapshots
	// back as Partial frames every that many iterations.
	PartialEvery int
	// Resume, when non-nil, warm-starts the tile from a journaled
	// partial snapshot (checkpoint resume across the process boundary).
	Resume *PartialState
}

// Beat is one optimizer heartbeat forwarded across the process
// boundary, so the supervisor's silence watchdog sees exactly the
// liveness stream the in-process stall watchdog would.
type Beat struct {
	Index int
	Iter  int
	Loss  float64
}

// Partial is a mid-tile optimizer snapshot forwarded to the supervisor
// for journaling.
type Partial struct {
	Index int
	State PartialState
}

// Outcome mirrors one flow.AttemptOutcome in wire form.
type Outcome struct {
	Attempt  int
	Engine   string
	Err      string
	Iters    int
	LastLoss float64
	Stalled  bool
}

// Reply is the worker's result for one task: window-local shots (the
// supervisor applies core ownership), the degradation path, and the
// per-attempt history that keeps TileStat truthful. Err is a
// deterministic task-level failure (unreadable bundle, unknown engine)
// — retrying it will not help, which the supervisor's circuit breaker
// turns into in-process degradation.
type Reply struct {
	Index    int
	Shots    []geom.Circle
	Path     string
	Outcomes []Outcome
	Err      string
}

// Message is the one-of envelope every frame carries; exactly one field
// is non-nil.
type Message struct {
	Hello   *Hello
	Ping    *Ping
	Task    *Task
	Beat    *Beat
	Partial *Partial
	Reply   *Reply
}

// EncodeMessage gob-encodes one message for framing.
func EncodeMessage(m *Message) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("procpool: encode message: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeMessage decodes one framed payload and checks the one-of
// invariant.
func DecodeMessage(p []byte) (*Message, error) {
	m := new(Message)
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(m); err != nil {
		return nil, fmt.Errorf("procpool: decode message: %w", err)
	}
	set := 0
	for _, field := range []bool{
		m.Hello != nil, m.Ping != nil, m.Task != nil,
		m.Beat != nil, m.Partial != nil, m.Reply != nil,
	} {
		if field {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("procpool: message sets %d of the one-of fields", set)
	}
	return m, nil
}
