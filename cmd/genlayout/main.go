// Command genlayout writes the ten synthetic benchmark layouts as .glp
// text files, so they can be inspected, edited, and fed back through
// cfaopc -layout or evalmask.
//
// With -array RxC it instead writes one repeated-cell array layout —
// R rows by C columns of an identical motif, the best case for the
// window dedup cache (cfaopc -window-cache): every cell window hashes
// identically, so a tiled run computes one cell and serves the rest.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"cfaopc/internal/gds"
	"cfaopc/internal/layout"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genlayout: ")
	outDir := flag.String("out", "layouts", "output directory")
	asGDS := flag.Bool("gds", false, "also write each case as a GDSII stream on layer 1")
	arraySpec := flag.String("array", "", "write one RxC repeated-cell array layout (e.g. -array 8x8) instead of the benchmark suite")
	tileNM := flag.Int("tile-nm", 0, "array mode: tile edge in nm (default 2048)")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	var suite []*layout.Layout
	if *arraySpec != "" {
		rows, cols, err := parseArraySpec(*arraySpec)
		if err != nil {
			log.Fatal(err)
		}
		suite = []*layout.Layout{layout.GenerateArray(rows, cols, layout.ArrayConfig{TileNM: *tileNM})}
	} else {
		if *tileNM != 0 {
			log.Fatal("-tile-nm only applies with -array RxC")
		}
		suite = layout.GenerateSuite()
	}
	for _, l := range suite {
		path := filepath.Join(*outDir, l.Name+".glp")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := l.Write(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("%s: %d rects, %d nm2\n", path, len(l.Rects), l.Area())
		if *asGDS {
			gp := filepath.Join(*outDir, l.Name+".gds")
			gf, err := os.Create(gp)
			if err != nil {
				log.Fatal(err)
			}
			if err := gds.Write(gf, l, 1); err != nil {
				log.Fatal(err)
			}
			gf.Close()
			fmt.Printf("%s: GDSII stream\n", gp)
		}
	}
}

// parseArraySpec parses "RxC" (e.g. "8x8", "4X16") into positive
// row/column counts.
func parseArraySpec(spec string) (rows, cols int, err error) {
	lo := strings.ToLower(spec)
	a, b, ok := strings.Cut(lo, "x")
	if ok {
		rows, err = strconv.Atoi(a)
		if err == nil {
			cols, err = strconv.Atoi(b)
		}
	}
	if !ok || err != nil || rows <= 0 || cols <= 0 {
		return 0, 0, fmt.Errorf("-array %q: want RxC with positive integers, e.g. 8x8", spec)
	}
	return rows, cols, nil
}
