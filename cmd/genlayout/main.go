// Command genlayout writes the ten synthetic benchmark layouts as .glp
// text files, so they can be inspected, edited, and fed back through
// cfaopc -layout or evalmask.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cfaopc/internal/gds"
	"cfaopc/internal/layout"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genlayout: ")
	outDir := flag.String("out", "layouts", "output directory")
	asGDS := flag.Bool("gds", false, "also write each case as a GDSII stream on layer 1")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, l := range layout.GenerateSuite() {
		path := filepath.Join(*outDir, l.Name+".glp")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := l.Write(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("%s: %d rects, %d nm2\n", path, len(l.Rects), l.Area())
		if *asGDS {
			gp := filepath.Join(*outDir, l.Name+".gds")
			gf, err := os.Create(gp)
			if err != nil {
				log.Fatal(err)
			}
			if err := gds.Write(gf, l, 1); err != nil {
				log.Fatal(err)
			}
			gf.Close()
			fmt.Printf("%s: GDSII stream\n", gp)
		}
	}
}
