// Command cfaopcd serves the tiled OPC flow as a long-running daemon:
// clients POST JSON job specs, watch per-tile progress over SSE, and
// download the mask (streamed in row bands) and shot list.
//
//	cfaopcd -listen :8686 -data /var/lib/cfaopcd -layout-root /layouts
//
// Jobs queue on a bounded scheduler with priority ordering and
// per-tenant fairness; -max-active bounds how many run at once.
//
// Overload safety: every spec is priced by a deterministic cost model
// and admitted against -mem-budget-mb (429 + Retry-After past it, 400
// for jobs bigger than the whole budget); per-job deadline_ms and
// -queue-ttl expire jobs into the terminal deadline_exceeded state;
// and a watermark monitor walks a degradation ladder under measured
// heap pressure (shrink window cache -> pause admissions -> shed the
// youngest over-budget running job), with a wedge watchdog killing
// jobs that stop emitting events. See DESIGN.md §9.
//
// Every job persists through two journals — the daemon's job-state log
// and the flow's tile checkpoint — so a daemon killed mid-run (even
// SIGKILL) restarts with every unfinished job requeued, resumed from
// its checkpoint, and finishing with byte-identical output; SSE
// clients reconnect with Last-Event-ID and replay exactly the events
// they missed.
//
// The listener's actual address is written to <data>/addr once the
// daemon is serving, so scripts using -listen 127.0.0.1:0 can find it.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"cfaopc/internal/server"
	"cfaopc/internal/wcache"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cfaopcd: ")

	var (
		listen     = flag.String("listen", "127.0.0.1:8686", "HTTP listen address (port 0 picks one; see <data>/addr)")
		dataDir    = flag.String("data", "", "state directory: job journals, checkpoints, masks (required)")
		layoutRoot = flag.String("layout-root", ".", "directory job specs resolve layout refs under")
		maxActive  = flag.Int("max-active", 1, "jobs running concurrently")
		queueCap   = flag.Int("queue-cap", 64, "queued-job cap; beyond it submissions get 429")

		memBudgetMB = flag.Int64("mem-budget-mb", 2048, "admission memory budget in MiB; jobs are priced by EstimateCost and 429ed past it")
		heapHighMB  = flag.Int64("heap-high-mb", 0, "heap high watermark in MiB (0 = the budget); crossing it pauses admissions, holding it sheds")
		heapLowMB   = flag.Int64("heap-low-mb", 0, "heap low watermark in MiB (0 = 3/4 of high); crossing it shrinks the window cache")
		queueTTL    = flag.Duration("queue-ttl", 0, "max queue wait before a job ends deadline_exceeded (0 = none)")
		wedgeTO     = flag.Duration("wedge-timeout", 2*time.Minute, "kill running jobs that publish no event for this long (<0 disables)")
		maxWait     = flag.Duration("max-queue-wait", 5*time.Minute, "anti-starvation bound: queued past this preempts every priority (<0 disables)")
		monitorTick = flag.Duration("monitor-every", 500*time.Millisecond, "governor pulse interval: watermark sample, deadline sweep, wedge scan")
		cacheMB     = flag.Int64("cache-mb", 0, "shared window dedup cache memory tier in MiB (0 = off); shrinks under heap pressure")
	)
	flag.Parse()
	if *dataDir == "" {
		log.Fatal("-data <dir> is required")
	}

	cfg := server.ManagerConfig{
		DataDir:    *dataDir,
		LayoutRoot: *layoutRoot,
		MaxActive:  *maxActive,
		QueueCap:   *queueCap,
		Governor: server.GovernorConfig{
			MemBudget: *memBudgetMB << 20,
			HeapHigh:  *heapHighMB << 20,
			HeapLow:   *heapLowMB << 20,
		},
		QueueTTL:     *queueTTL,
		WedgeTimeout: *wedgeTO,
		MaxQueueWait: *maxWait,
		MonitorEvery: *monitorTick,
	}
	if *cacheMB > 0 {
		cache, err := wcache.New(wcache.Config{MaxBytes: *cacheMB << 20})
		if err != nil {
			log.Fatal(err)
		}
		cfg.Cache = cache
	}
	m, err := server.NewManager(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m.Start()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	// Publish the bound address last-thing-before-serving so a watcher
	// that sees the file knows the API is up.
	addrPath := filepath.Join(*dataDir, "addr")
	if err := os.WriteFile(addrPath, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.NewHandler(m)}

	stopped := make(chan struct{})
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(stopped)
		<-sigCh
		log.Print("signal: shutting down — running jobs checkpoint and resume on the next start")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		m.Stop()
	}()

	log.Printf("serving on %s (data %s)", ln.Addr(), *dataDir)
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-stopped
}
