// Command cfaopcd serves the tiled OPC flow as a long-running daemon:
// clients POST JSON job specs, watch per-tile progress over SSE, and
// download the mask (streamed in row bands) and shot list.
//
//	cfaopcd -listen :8686 -data /var/lib/cfaopcd -layout-root /layouts
//
// Jobs queue on a bounded scheduler with priority ordering and
// per-tenant fairness; -max-active bounds how many run at once.
//
// Every job persists through two journals — the daemon's job-state log
// and the flow's tile checkpoint — so a daemon killed mid-run (even
// SIGKILL) restarts with every unfinished job requeued, resumed from
// its checkpoint, and finishing with byte-identical output; SSE
// clients reconnect with Last-Event-ID and replay exactly the events
// they missed.
//
// The listener's actual address is written to <data>/addr once the
// daemon is serving, so scripts using -listen 127.0.0.1:0 can find it.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"cfaopc/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cfaopcd: ")

	var (
		listen     = flag.String("listen", "127.0.0.1:8686", "HTTP listen address (port 0 picks one; see <data>/addr)")
		dataDir    = flag.String("data", "", "state directory: job journals, checkpoints, masks (required)")
		layoutRoot = flag.String("layout-root", ".", "directory job specs resolve layout refs under")
		maxActive  = flag.Int("max-active", 1, "jobs running concurrently")
		queueCap   = flag.Int("queue-cap", 64, "queued-job cap; beyond it submissions get 429")
	)
	flag.Parse()
	if *dataDir == "" {
		log.Fatal("-data <dir> is required")
	}

	m, err := server.NewManager(server.ManagerConfig{
		DataDir:    *dataDir,
		LayoutRoot: *layoutRoot,
		MaxActive:  *maxActive,
		QueueCap:   *queueCap,
	})
	if err != nil {
		log.Fatal(err)
	}
	m.Start()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	// Publish the bound address last-thing-before-serving so a watcher
	// that sees the file knows the API is up.
	addrPath := filepath.Join(*dataDir, "addr")
	if err := os.WriteFile(addrPath, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.NewHandler(m)}

	stopped := make(chan struct{})
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(stopped)
		<-sigCh
		log.Print("signal: shutting down — running jobs checkpoint and resume on the next start")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		m.Stop()
	}()

	log.Printf("serving on %s (data %s)", ln.Addr(), *dataDir)
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-stopped
}
