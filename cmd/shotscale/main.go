// Command shotscale measures how fracturing cost scales with the mask
// grid resolution: the same physical case is optimized at several
// resolutions, then fractured both ways. Rectangular (Manhattanization)
// shot counts grow roughly linearly with resolution because every
// staircase step of a curvilinear boundary becomes a rectangle edge,
// while circular shot counts track the physical geometry and stay nearly
// flat — the core economics behind the circular e-beam writer (Figure 1),
// and the reason the paper's 1 nm/px rectangle counts exceed the ones
// this reproduction records at 4 nm/px.
//
// Usage:
//
//	shotscale [-case 4] [-grids 256,512,1024] [-iters 40]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"cfaopc/internal/fracture"
	"cfaopc/internal/ilt"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/optics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shotscale: ")
	var (
		caseID = flag.Int("case", 4, "benchmark case (1-10)")
		grids  = flag.String("grids", "256,512,1024", "comma-separated grid sizes")
		iters  = flag.Int("iters", 40, "ILT iterations per resolution")
	)
	flag.Parse()
	l := layout.GenerateSuite()[*caseID-1]

	fmt.Printf("%s (%d nm²): DevelSet mask fractured at each resolution\n", l.Name, l.Area())
	fmt.Printf("%8s %8s %12s %12s %10s %8s\n", "grid", "nm/px", "rect shots", "circ shots", "reduction", "time")
	for _, tok := range strings.Split(*grids, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			log.Fatalf("bad grid %q", tok)
		}
		start := time.Now()
		cfg := optics.Default()
		cfg.TileNM = float64(l.TileNM)
		sim, err := litho.New(cfg, n)
		if err != nil {
			log.Fatal(err)
		}
		sim.KOpt = 5
		target := l.Rasterize(n)

		iltCfg := ilt.DefaultConfig()
		iltCfg.Iterations = *iters
		iltCfg.MinFeaturePx = int(576 / (sim.DX * sim.DX))
		if iltCfg.MinFeaturePx < 2 {
			iltCfg.MinFeaturePx = 2
		}
		mask := (&ilt.LevelSet{Cfg: iltCfg}).Optimize(sim, target)

		rects := fracture.RectShots(mask, 1)
		circles := fracture.CircleRule(mask, fracture.DefaultCircleRuleConfig(sim.DX))
		red := float64(len(rects)) / float64(max(1, len(circles)))
		fmt.Printf("%8d %8.1f %12d %12d %9.1fx %8s\n",
			n, sim.DX, len(rects), len(circles), red, time.Since(start).Round(time.Second))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
