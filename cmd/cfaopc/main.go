// Command cfaopc optimizes a single target layout end to end and emits the
// circular shot list, mask renders, and the metric report.
//
// Usage:
//
//	cfaopc -case 1 [flags]            # a synthetic benchmark case
//	cfaopc -layout path.glp [flags]   # a layout file
//
// Methods: circleopt (default), or a pixel baseline plus CircleRule
// fracturing via -method develset|neuralilt|multiilt.
//
// With -tile-core > 0 the layout is cut into halo-and-stitch windows and
// optimized through the tiled full-chip flow; -tile-workers bounds the
// windows optimized concurrently (output is identical at any count) and
// -workers the per-kernel litho parallelism inside each simulator.
//
// Tiled runs are fault-tolerant: SIGINT/SIGTERM cancels promptly, a tile
// that panics, times out (-tile-timeout) or emits invalid output is
// retried (-tile-retries), degraded to the -fallback method, then to an
// empty tile; -checkpoint journals completed tiles so an interrupted run
// resumes where it stopped with bit-identical output.
//
// Tiled runs are memory-bounded: windows are rasterized on demand from
// the rect geometry, -stream skips the dense stitched mask entirely, and
// -mask-out streams the mask to a PGM file in row bands, so peak memory
// scales with the window size, not the grid.
//
// With -proc-workers N tiles run in supervised worker subprocesses (the
// binary re-executes itself as its own worker, or -worker-bin names
// one): a crashed worker costs one dispatch, not the run, and output
// stays byte-identical to the in-process flow.
//
// Tiled runs can skip repeated work: -window-cache mem|disk serves
// content-identical windows from a dedup cache (disk adds a persistent
// tier under -cache-dir that survives across runs), and -adaptive-tiles
// merges sparse 2×2 blocks, skips empty ones, and splits dense windows.
// Both change wall time only — the shot list stays byte-identical.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"cfaopc/internal/bench"
	"cfaopc/internal/engine"
	"cfaopc/internal/flow"
	"cfaopc/internal/fracture"
	"cfaopc/internal/gds"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/metrics"
	"cfaopc/internal/optics"
	"cfaopc/internal/procpool"
	"cfaopc/internal/procworker"
	"cfaopc/internal/server"
	"cfaopc/internal/wcache"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cfaopc: ")

	if procpool.InWorker() {
		// Spawned as our own tile worker (the -proc-workers default):
		// serve frames on stdin/stdout and exit. Flags are ignored —
		// every knob a tile needs travels inside its task.
		if err := procworker.Serve(os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	var (
		caseID      = flag.Int("case", 0, "synthetic benchmark case (1-10)")
		layoutPath  = flag.String("layout", "", "layout file (.glp) to optimize instead of a benchmark case")
		method      = flag.String("method", "circleopt", "circleopt | doseopt | develset | neuralilt | multiilt | greedy")
		gridN       = flag.Int("grid", 256, "simulation grid (pixels per tile side)")
		iters       = flag.Int("iters", 60, "optimization iterations")
		sampleNM    = flag.Float64("sample-dist", 32, "circle sample distance m in nm")
		gamma       = flag.Float64("gamma", 3, "CircleOpt sparsity weight")
		kOpt        = flag.Int("kopt", 5, "kernels used during optimization")
		workers     = flag.Int("workers", 0, "per-kernel litho goroutines (0/1 serial, -1 = all cores)")
		tileCore    = flag.Int("tile-core", 0, "tiled flow: core px owned per window (0 = single window)")
		tileHalo    = flag.Int("tile-halo", 32, "tiled flow: halo context px around each core")
		tileWorkers = flag.Int("tile-workers", 1, "tiled flow: concurrent windows (-1 = all cores); output is identical at any count")
		tileTimeout = flag.Duration("tile-timeout", 0, "tiled flow: per-tile optimizer attempt deadline (0 = none)")
		stallTO     = flag.Duration("stall-timeout", 0, "tiled flow: kill an attempt whose optimizer heartbeats stop for this long (0 = none; must not exceed -tile-timeout)")
		tileRetries = flag.Int("tile-retries", 1, "tiled flow: extra attempts for a failed tile before degrading")
		fallback    = flag.String("fallback", "circlerule", "tiled flow: degraded-tile method (any -method value, or 'none')")
		ckptPath    = flag.String("checkpoint", "", "tiled flow: journal completed tiles here and resume from it")
		ckptCompact = flag.Bool("checkpoint-compact", false, "compact the -checkpoint journal (drop superseded records) and exit without optimizing")
		partialEvry = flag.Int("partial-every", 0, "tiled flow: journal mid-tile optimizer snapshots every N iterations (0 = off; needs -checkpoint)")
		quarDir     = flag.String("quarantine-dir", "", "tiled flow: write a repro bundle here for every tile that degrades to empty (replay with cmd/replaytile)")
		quarMaxN    = flag.Int("quarantine-max-bundles", 0, "retention cap on quarantine bundles; oldest .qrb+.json pairs pruned first (0 = unlimited)")
		quarMaxB    = flag.Int64("quarantine-max-bytes", 0, "retention byte budget for quarantine .qrb files (0 = unlimited)")
		procWorkers = flag.Int("proc-workers", 0, "tiled flow: run tiles in this many supervised worker subprocesses (0 = in-process; overrides -tile-workers)")
		workerBin   = flag.String("worker-bin", "", "tiled flow: worker binary for -proc-workers (default: re-execute this binary)")
		remoteHosts = flag.String("remote-hosts", "", "tiled flow: comma-separated tileworker -listen addresses; tiles shard across them (excludes -proc-workers)")
		remoteSil   = flag.Duration("remote-silence", 0, "remote hosts: reconnect a host whose frames stop for this long (0 = 10s default)")
		remoteBack  = flag.Duration("remote-backoff", 0, "remote hosts: base reconnect backoff, doubled per consecutive failure (0 = 50ms default)")
		remoteLimit = flag.Int("remote-crash-limit", 0, "remote hosts: consecutive failures before a host's breaker opens and its tiles degrade to in-process (0 = 3 default)")
		winCache    = flag.String("window-cache", "off", "tiled flow: dedup identical windows — off | mem | disk (disk adds a persistent tier under -cache-dir)")
		cacheDir    = flag.String("cache-dir", "", "tiled flow: directory for the -window-cache disk tier (survives across runs)")
		adaptive    = flag.Bool("adaptive-tiles", false, "tiled flow: occupancy-adaptive tiling — merge sparse 2×2 blocks, skip empty ones, split dense windows (output stays deterministic)")
		stream      = flag.Bool("stream", false, "tiled flow: memory-bounded run — never materialize the dense stitched mask (skips the aerial-image metrics; shot list stays the output)")
		maskOut     = flag.String("mask-out", "", "tiled flow: stream the stitched mask to this PGM file in row bands (works with or without -stream)")
		compact     = flag.Bool("compact", false, "remove shots that are redundant for the final union (print-identical)")
		outDir      = flag.String("out", "out", "output directory")
		jobFile     = flag.String("job", "", "run a cfaopcd JSON job spec through the service engine ('-' = stdin); writes mask.pgm + shots.csv under -out")
		layoutRoot  = flag.String("layout-root", ".", "directory -job specs resolve layout refs under")
		strictIO    = flag.Bool("strict-storage", false, "tiled flow: fail the run on any checkpoint or quarantine write error instead of degrading (default: degrade and report)")
	)
	flag.Parse()

	// Reject incoherent flag combinations before any expensive work, with
	// the fix spelled out — a full-chip run should not die hours in on a
	// config error that was visible at launch.
	switch {
	case *stallTO < 0:
		log.Fatal("-stall-timeout must be >= 0")
	case *stallTO > 0 && *tileTimeout > 0 && *stallTO > *tileTimeout:
		log.Fatalf("-stall-timeout %s exceeds -tile-timeout %s: the wall deadline would always fire first; lower -stall-timeout or raise -tile-timeout", *stallTO, *tileTimeout)
	case *stallTO > 0 && *tileCore <= 0:
		log.Fatal("-stall-timeout needs the tiled flow; set -tile-core > 0")
	case *partialEvry < 0:
		log.Fatal("-partial-every must be >= 0")
	case *partialEvry > 0 && *ckptPath == "":
		log.Fatal("-partial-every journals mid-tile snapshots and needs -checkpoint <path>")
	case *ckptCompact && *ckptPath == "":
		log.Fatal("-checkpoint-compact needs -checkpoint <path> naming the journal to compact")
	case *quarDir != "" && *tileCore <= 0:
		log.Fatal("-quarantine-dir needs the tiled flow; set -tile-core > 0")
	case (*quarMaxN > 0 || *quarMaxB > 0) && *quarDir == "":
		log.Fatal("-quarantine-max-bundles / -quarantine-max-bytes bound a quarantine directory; set -quarantine-dir")
	case *quarMaxN < 0 || *quarMaxB < 0:
		log.Fatal("-quarantine-max-bundles and -quarantine-max-bytes must be >= 0")
	case *procWorkers < 0:
		log.Fatal("-proc-workers must be >= 0")
	case *procWorkers > 0 && *tileCore <= 0:
		log.Fatal("-proc-workers needs the tiled flow; set -tile-core > 0")
	case *workerBin != "" && *procWorkers <= 0:
		log.Fatal("-worker-bin only applies with -proc-workers > 0")
	case *remoteHosts != "" && *procWorkers > 0:
		log.Fatal("-remote-hosts and -proc-workers are mutually exclusive transports; pick one")
	case *remoteHosts != "" && *tileCore <= 0:
		log.Fatal("-remote-hosts needs the tiled flow; set -tile-core > 0")
	case (*remoteSil != 0 || *remoteBack != 0 || *remoteLimit != 0) && *remoteHosts == "":
		log.Fatal("-remote-silence / -remote-backoff / -remote-crash-limit only apply with -remote-hosts")
	case *remoteSil < 0 || *remoteBack < 0 || *remoteLimit < 0:
		log.Fatal("-remote-silence, -remote-backoff, and -remote-crash-limit must be >= 0")
	case *winCache != "off" && *winCache != "mem" && *winCache != "disk":
		log.Fatalf("-window-cache %q: want off, mem, or disk", *winCache)
	case *winCache != "off" && *tileCore <= 0:
		log.Fatal("-window-cache needs the tiled flow; set -tile-core > 0")
	case *winCache == "disk" && *cacheDir == "":
		log.Fatal("-window-cache disk needs -cache-dir <path> for the persistent tier")
	case *cacheDir != "" && *winCache != "disk":
		log.Fatal("-cache-dir only applies with -window-cache disk")
	case *adaptive && *tileCore <= 0:
		log.Fatal("-adaptive-tiles needs the tiled flow; set -tile-core > 0")
	}
	if *quarDir != "" {
		// Probe writability now, not at the first quarantined tile.
		if err := os.MkdirAll(*quarDir, 0o755); err != nil {
			log.Fatalf("-quarantine-dir: %v", err)
		}
		probe := filepath.Join(*quarDir, ".cfaopc-probe")
		if err := os.WriteFile(probe, nil, 0o644); err != nil {
			log.Fatalf("-quarantine-dir is not writable: %v", err)
		}
		os.Remove(probe)
	}

	// Two-stage shutdown. The first SIGINT/SIGTERM drains the tiled
	// flow: no new tiles dispatch, in-flight tiles finish and are
	// checkpointed, and the run exits nonzero with a drained summary. A
	// second signal cancels hard — in-flight tiles stop within one
	// kernel convolution. A third falls through to the default handler.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	drainCh := make(chan struct{})
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		log.Print("signal: draining — in-flight tiles finish and checkpoint; signal again to cancel hard")
		close(drainCh)
		<-sigCh
		log.Print("signal: hard cancel")
		cancel()
		signal.Reset(os.Interrupt, syscall.SIGTERM)
	}()

	if *jobFile != "" {
		// Service parity mode: the spec runs through the same
		// server.RunSpec path the cfaopcd daemon uses, so the mask and
		// shot bytes here are the reference a daemon run must match.
		if *caseID != 0 || *layoutPath != "" {
			log.Fatal("-job carries its own target; drop -case / -layout")
		}
		runJobSpec(ctx, *jobFile, *layoutRoot, *outDir, *ckptPath, drainCh)
		return
	}

	var l *layout.Layout
	switch {
	case *layoutPath != "":
		f, err := os.Open(*layoutPath)
		if err != nil {
			log.Fatal(err)
		}
		var perr error
		if strings.HasSuffix(strings.ToLower(*layoutPath), ".gds") {
			l, perr = gds.Read(f, -1)
		} else {
			l, perr = layout.Parse(f)
		}
		f.Close()
		if perr != nil {
			log.Fatal(perr)
		}
	case *caseID >= 1 && *caseID <= 10:
		l = layout.GenerateSuite()[*caseID-1]
	default:
		log.Fatal("need -case 1..10 or -layout file.glp")
	}

	engOpts := engine.Options{Iters: *iters, Gamma: *gamma, SampleNM: *sampleNM}
	optimize, err := engine.For(*method, engOpts)
	if err != nil {
		log.Fatal(err)
	}

	if *ckptCompact {
		// Maintenance mode: rewrite the journal dropping superseded
		// records (duplicate tiles, stale partial snapshots), then exit.
		// The tiling flags must match the run that wrote the journal —
		// the fingerprint check enforces that.
		if *tileCore <= 0 {
			log.Fatal("-checkpoint-compact needs the original run's tiling flags (-tile-core > 0)")
		}
		dx := float64(l.TileNM) / float64(*gridN)
		stats, err := flow.CompactCheckpoint(l, flow.Config{
			GridN: *gridN, CorePx: *tileCore, HaloPx: *tileHalo,
			Optics: optics.Default(), KOpt: *kOpt, TileRetries: *tileRetries,
			RMinPx: 6 / dx, RMaxPx: 152 / dx,
			CheckpointPath: *ckptPath,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("compacted %s: kept %d records, dropped %d, %d -> %d bytes\n",
			*ckptPath, stats.Kept, stats.Dropped, stats.BytesBefore, stats.BytesAfter)
		return
	}

	// Full-grid simulator: optimization target in single-window mode, and
	// the evaluator for the stitched result in tiled mode.
	cfg := optics.Default()
	cfg.TileNM = float64(l.TileNM)
	sim, err := litho.New(cfg, *gridN)
	if err != nil {
		log.Fatal(err)
	}
	sim.KOpt = *kOpt
	sim.Workers = *workers
	target := l.Rasterize(*gridN)

	var mask *grid.Real
	var shots []geom.Circle
	if *tileCore > 0 {
		var bandFile *pgmBandWriter
		fCfg := flow.Config{
			GridN:         *gridN,
			CorePx:        *tileCore,
			HaloPx:        *tileHalo,
			Optics:        optics.Default(),
			KOpt:          *kOpt,
			Workers:       *workers,
			TileWorkers:   *tileWorkers,
			Optimize:      optimize,
			TileRetries:   *tileRetries,
			TileTimeout:   *tileTimeout,
			StallTimeout:  *stallTO,
			PartialEvery:  *partialEvry,
			QuarantineDir: *quarDir,
			// Validation bounds follow the MRC radius window (12–76 nm),
			// scaled to window-grid pixels with a tolerance band so
			// borderline-legal shots degrade via MRC reporting, not
			// tile retries.
			RMinPx:         6 / sim.DX,
			RMaxPx:         152 / sim.DX,
			CheckpointPath: *ckptPath,
			// -stream drops the dense stitched mask; the shot list is the
			// product, and -mask-out can still write the mask in bands.
			KeepMask:             !*stream,
			Drain:                drainCh,
			QuarantineMaxBundles: *quarMaxN,
			QuarantineMaxBytes:   *quarMaxB,
			StrictStorage:        *strictIO,
		}
		fCfg.AdaptiveTiles = *adaptive
		var cache *wcache.Cache
		if *winCache != "off" {
			wc := wcache.Config{}
			if *winCache == "disk" {
				wc.Dir = *cacheDir
			}
			var err error
			if cache, err = wcache.New(wc); err != nil {
				log.Fatalf("-window-cache: %v", err)
			}
			fCfg.Cache = cache
		}
		if *procWorkers > 0 {
			bin := *workerBin
			if bin == "" {
				exe, err := os.Executable()
				if err != nil {
					log.Fatalf("-proc-workers: cannot locate own binary (%v); set -worker-bin", err)
				}
				bin = exe
			}
			fCfg.ProcWorkers = *procWorkers
			fCfg.WorkerCmd = func() *exec.Cmd {
				cmd := exec.Command(bin)
				cmd.Stderr = os.Stderr // worker diagnostics land on our stderr
				return cmd
			}
		}
		if *remoteHosts != "" {
			for _, h := range strings.Split(*remoteHosts, ",") {
				if h = strings.TrimSpace(h); h != "" {
					fCfg.RemoteHosts = append(fCfg.RemoteHosts, h)
				}
			}
			if len(fCfg.RemoteHosts) == 0 {
				log.Fatal("-remote-hosts: no addresses after splitting on commas")
			}
			fCfg.RemoteSilence = *remoteSil
			fCfg.RemoteBackoff = *remoteBack
			fCfg.RemoteCrashLimit = *remoteLimit
		}
		if *maskOut != "" {
			var err error
			bandFile, err = newPGMBandWriter(*maskOut, *gridN)
			if err != nil {
				log.Fatal(err)
			}
			fCfg.MaskWriter = bandFile
		}
		fbName := ""
		if *fallback != "" && !strings.EqualFold(*fallback, "none") {
			fb, err := engine.For(*fallback, engOpts)
			if err != nil {
				log.Fatalf("-fallback: %v", err)
			}
			fCfg.Fallback = fb
			fbName = *fallback
		}
		// Engine metadata rides into quarantine bundles so replaytile can
		// rebuild this exact optimizer chain offline.
		fCfg.Engines = engine.Meta(*method, fbName, engOpts)
		res, err := flow.RunContext(ctx, l, fCfg)
		if errors.Is(err, flow.ErrDrained) {
			// Graceful shutdown: everything that finished is journaled;
			// no stitched output is written (the shot list is incomplete
			// by construction, and a partial band file would be torn).
			fmt.Printf("drained: %d of %d tiles completed and checkpointed; no stitched output written\n",
				res.Completed, res.Tiles)
			if res.ProcCrashes > 0 || res.Broken > 0 {
				fmt.Printf("proc: %d worker crashes survived, %d slots circuit-broken to in-process\n",
					res.ProcCrashes, res.Broken)
			}
			if res.RemoteCrashes > 0 || res.RemoteBroken > 0 {
				fmt.Printf("remote: %d link failures survived, %d breaker openings degraded tiles to in-process\n",
					res.RemoteCrashes, res.RemoteBroken)
			}
			if *ckptPath != "" {
				fmt.Printf("resume: re-run with the same flags and -checkpoint %s\n", *ckptPath)
			}
			os.Exit(3)
		}
		if err != nil {
			log.Fatal(err)
		}
		if bandFile != nil {
			if err := bandFile.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("streamed mask bands to %s\n", *maskOut)
		}
		mask, shots = res.Mask, res.Shots
		occupied := 0
		for _, ts := range res.TileStats {
			if ts.Occupied {
				occupied++
			}
		}
		pool := fmt.Sprintf("tile-workers %d", *tileWorkers)
		if *procWorkers > 0 {
			pool = fmt.Sprintf("proc-workers %d", *procWorkers)
		}
		if n := len(fCfg.RemoteHosts); n > 0 {
			pool = fmt.Sprintf("remote-hosts %d", n)
		}
		fmt.Printf("flow: %d windows (%d occupied), %s, peak flow memory ≈ %.1f MB\n",
			res.Tiles, occupied, pool, float64(res.PeakBytes)/(1<<20))
		if *adaptive {
			fmt.Printf("adaptive: %d sparse blocks merged, %d dense windows split, %d empty tiles skipped\n",
				res.Merged, res.Split, res.Skipped)
		}
		if cache != nil {
			st := cache.Stats()
			fmt.Printf("cache: %d hits translated into place (%d from disk), %d misses, %d entries ≈ %.1f MB\n",
				res.CacheHits, st.DiskHits, res.CacheMisses, st.Entries, float64(res.CacheBytes)/(1<<20))
			if st.BadDisk+st.DiskErrs > 0 {
				note := ""
				if st.LastDiskErr != "" {
					note = " (last: " + st.LastDiskErr + ")"
				}
				fmt.Printf("cache: %d corrupt disk entries dropped, %d disk errors — each degraded to a miss%s\n",
					st.BadDisk, st.DiskErrs, note)
			}
		}
		for _, ts := range res.TileStats {
			if !ts.Occupied {
				continue
			}
			note := ""
			if ts.Proc {
				note = "  [proc]"
			}
			if ts.Host != "" {
				note += "  [" + ts.Host + "]"
			}
			if ts.Resumed {
				note += "  [resumed]"
			}
			if ts.CacheHit {
				note += "  [cached]"
			}
			if ts.Path != flow.PathPrimary {
				note += "  [" + ts.Path + "]"
			}
			if ts.Attempts > 1 {
				note += fmt.Sprintf("  [%d attempts: %s]", ts.Attempts, ts.Failure)
			}
			if ts.Stalled {
				note += "  [stalled]"
			}
			if ts.Bundle != "" {
				note += "  [quarantined: " + ts.Bundle + "]"
			}
			if ts.ProcCrashes > 0 {
				note += fmt.Sprintf("  [%d worker crashes]", ts.ProcCrashes)
			}
			fmt.Printf("  tile %2d core(%3d,%3d): shots %3d  wall %s%s\n",
				ts.Index, ts.CX, ts.CY, ts.Shots, ts.Wall.Round(time.Millisecond), note)
		}
		if res.Retried+res.Fallbacks+res.Empty+res.Resumed+res.Stalled > 0 {
			fmt.Printf("faults: %d retried, %d fallback, %d empty, %d resumed from checkpoint, %d stalled, %d quarantined\n",
				res.Retried, res.Fallbacks, res.Empty, res.Resumed, res.Stalled, res.Quarantined)
		}
		if res.ProcCrashes > 0 || res.Broken > 0 {
			fmt.Printf("proc: %d worker crashes survived, %d slots circuit-broken to in-process\n",
				res.ProcCrashes, res.Broken)
		}
		if res.RemoteCrashes > 0 || res.RemoteBroken > 0 {
			fmt.Printf("remote: %d link failures survived, %d breaker openings degraded tiles to in-process\n",
				res.RemoteCrashes, res.RemoteBroken)
		}
		if res.CheckpointDegraded {
			fmt.Printf("storage: checkpoint journal failed mid-run (%s) — results are correct but this run cannot be resumed (-strict-storage to fail fast)\n",
				res.CheckpointErr)
		}
		if res.QuarantineDropped > 0 {
			fmt.Printf("storage: %d quarantine bundle(s) lost to write errors — forensics dropped, tiles unaffected (-strict-storage to fail fast)\n",
				res.QuarantineDropped)
		}
	} else {
		mask, shots = optimize(sim, target)
	}

	if *compact {
		if mask == nil {
			log.Fatal("-compact needs the dense mask; drop -stream")
		}
		before := len(shots)
		shots = fracture.CompactShots(*gridN, *gridN, shots)
		mask = geom.RasterizeCircles(*gridN, *gridN, shots)
		fmt.Printf("compaction: %d -> %d shots\n", before, len(shots))
	}

	// Streaming runs never materialize the dense mask, so the full-grid
	// aerial-image metrics are skipped; the shot list and MRC report are
	// the product (use -mask-out to stream the mask to disk).
	var printed *grid.Real
	if mask != nil {
		res := sim.Simulate(mask)
		printed = res.ZNom
		rep := metrics.Evaluate(l, res.ZNom, res.ZMax, res.ZMin, len(shots))
		fmt.Printf("%s / %s: L2 %.1f nm2, PVB %.1f nm2, EPE %d, shots %d\n",
			l.Name, *method, rep.L2, rep.PVB, rep.EPE, rep.Shots)
	} else {
		fmt.Printf("%s / %s: shots %d (streamed: dense-mask metrics skipped)\n",
			l.Name, *method, len(shots))
	}
	if v := metrics.CheckCircleMRC(shots, sim.DX, 12, 76); len(v) > 0 {
		fmt.Printf("MRC: %d violations (first: shot %d, %s)\n", len(v), v[0].Shot, v[0].Reason)
	} else {
		fmt.Println("MRC: clean")
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	// Order shots to minimize beam travel before hand-off.
	shots = fracture.OrderShots(shots)
	shotPath := filepath.Join(*outDir, l.Name+"_shots.csv")
	sf, err := os.Create(shotPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := fracture.WriteShotsCSV(sf, shots, sim.DX); err != nil {
		log.Fatal(err)
	}
	sf.Close()

	for name, g := range map[string]*grid.Real{
		"target": target, "mask": mask, "printed": printed,
	} {
		if g == nil {
			continue // streamed run: no dense mask or print to render
		}
		p := filepath.Join(*outDir, fmt.Sprintf("%s_%s.png", l.Name, name))
		if err := bench.GridPNG(g, p); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %s and renders under %s/\n", shotPath, *outDir)
}

// runJobSpec executes one cfaopcd job spec via the shared service
// engine and writes the service artifacts (mask.pgm, shots.csv) under
// outDir. The drain channel gives -job runs the same two-stage
// shutdown as flag-driven tiled runs.
func runJobSpec(ctx context.Context, jobFile, layoutRoot, outDir, ckptPath string, drainCh <-chan struct{}) {
	var in *os.File
	if jobFile == "-" {
		in = os.Stdin
	} else {
		var err error
		if in, err = os.Open(jobFile); err != nil {
			log.Fatal(err)
		}
		defer in.Close()
	}
	spec, err := server.ParseSpec(in)
	if err != nil {
		log.Fatal(err)
	}
	l, err := spec.ResolveLayout(layoutRoot)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	res, err := server.RunSpec(ctx, l, spec, server.RunOpts{
		Checkpoint: ckptPath,
		MaskPath:   filepath.Join(outDir, "mask.pgm"),
		ShotsPath:  filepath.Join(outDir, "shots.csv"),
		Drain:      drainCh,
	})
	if errors.Is(err, flow.ErrDrained) {
		fmt.Printf("drained: %d of %d tiles completed and checkpointed; no output written\n",
			res.Completed, res.Tiles)
		if ckptPath != "" {
			fmt.Printf("resume: re-run with the same spec and -checkpoint %s\n", ckptPath)
		}
		os.Exit(3)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s / %s: %d windows, shots %d; wrote %s and %s\n",
		l.Name, spec.Method, res.Tiles, len(res.Shots),
		filepath.Join(outDir, "mask.pgm"), filepath.Join(outDir, "shots.csv"))
}

// pgmBandWriter streams the stitched mask to disk as a binary PGM (P5),
// one flow band at a time, so writing the mask of an arbitrarily large
// grid never holds more than one band in memory. Bands arrive from the
// flow in top-to-bottom order; Close verifies every row landed.
type pgmBandWriter struct {
	f    *os.File
	w    *bufio.Writer
	n    int
	next int // next expected global row
	buf  []byte
}

func newPGMBandWriter(path string, n int) (*pgmBandWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(f)
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", n, n); err != nil {
		f.Close()
		return nil, err
	}
	return &pgmBandWriter{f: f, w: w, n: n, buf: make([]byte, n)}, nil
}

func (p *pgmBandWriter) WriteBand(y0 int, band *grid.Real) error {
	if y0 != p.next || band.W != p.n {
		return fmt.Errorf("pgm: band at row %d (width %d), expected row %d width %d", y0, band.W, p.next, p.n)
	}
	for y := 0; y < band.H; y++ {
		for x := 0; x < p.n; x++ {
			if band.Data[y*p.n+x] > 0.5 {
				p.buf[x] = 255
			} else {
				p.buf[x] = 0
			}
		}
		if _, err := p.w.Write(p.buf); err != nil {
			return err
		}
	}
	p.next += band.H
	return nil
}

func (p *pgmBandWriter) Close() error {
	if p.next != p.n {
		p.f.Close()
		return fmt.Errorf("pgm: only %d of %d rows streamed", p.next, p.n)
	}
	if err := p.w.Flush(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
