// Command cfaopc optimizes a single target layout end to end and emits the
// circular shot list, mask renders, and the metric report.
//
// Usage:
//
//	cfaopc -case 1 [flags]            # a synthetic benchmark case
//	cfaopc -layout path.glp [flags]   # a layout file
//
// Methods: circleopt (default), or a pixel baseline plus CircleRule
// fracturing via -method develset|neuralilt|multiilt.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"cfaopc/internal/bench"
	"cfaopc/internal/core"
	"cfaopc/internal/fracture"
	"cfaopc/internal/gds"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/ilt"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/metrics"
	"cfaopc/internal/optics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cfaopc: ")

	var (
		caseID     = flag.Int("case", 0, "synthetic benchmark case (1-10)")
		layoutPath = flag.String("layout", "", "layout file (.glp) to optimize instead of a benchmark case")
		method     = flag.String("method", "circleopt", "circleopt | doseopt | develset | neuralilt | multiilt | greedy")
		gridN      = flag.Int("grid", 256, "simulation grid (pixels per tile side)")
		iters      = flag.Int("iters", 60, "optimization iterations")
		sampleNM   = flag.Float64("sample-dist", 32, "circle sample distance m in nm")
		gamma      = flag.Float64("gamma", 3, "CircleOpt sparsity weight")
		kOpt       = flag.Int("kopt", 5, "kernels used during optimization")
		compact    = flag.Bool("compact", false, "remove shots that are redundant for the final union (print-identical)")
		outDir     = flag.String("out", "out", "output directory")
	)
	flag.Parse()

	var l *layout.Layout
	switch {
	case *layoutPath != "":
		f, err := os.Open(*layoutPath)
		if err != nil {
			log.Fatal(err)
		}
		if strings.HasSuffix(strings.ToLower(*layoutPath), ".gds") {
			l, err = gds.Read(f, -1)
		} else {
			l, err = layout.Parse(f)
		}
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *caseID >= 1 && *caseID <= 10:
		l = layout.GenerateSuite()[*caseID-1]
	default:
		log.Fatal("need -case 1..10 or -layout file.glp")
	}

	cfg := optics.Default()
	cfg.TileNM = float64(l.TileNM)
	sim, err := litho.New(cfg, *gridN)
	if err != nil {
		log.Fatal(err)
	}
	sim.KOpt = *kOpt
	target := l.Rasterize(*gridN)

	ruleCfg := fracture.DefaultCircleRuleConfig(sim.DX)
	ruleCfg.SampleDist = max(1, int(*sampleNM/sim.DX))

	var mask *grid.Real
	var shots []geom.Circle
	switch strings.ToLower(*method) {
	case "circleopt":
		coCfg := core.DefaultConfig(sim.DX)
		coCfg.Iterations = *iters
		coCfg.Gamma = *gamma / sim.DX // flag is in the paper's 1 nm/px scale
		res := (&core.CircleOpt{Cfg: coCfg, RuleCfg: ruleCfg}).Optimize(sim, target)
		mask, shots = res.Mask, res.Shots
	case "doseopt":
		coCfg := core.DefaultConfig(sim.DX)
		coCfg.Iterations = *iters
		coCfg.Gamma = *gamma / sim.DX
		res := (&core.DoseOpt{Cfg: coCfg, RuleCfg: ruleCfg}).Optimize(sim, target)
		mask = res.Mask
		for _, ds := range res.Shots {
			shots = append(shots, ds.Circle)
		}
		fmt.Printf("dose-modulated shots (dose range in list):\n")
	case "greedy":
		iltCfg := ilt.DefaultConfig()
		iltCfg.Iterations = *iters
		pixel := (&ilt.MultiLevel{Cfg: iltCfg}).Optimize(sim, target)
		shots = fracture.GreedyCircles(pixel, fracture.GreedyCircleConfig{
			RMin: ruleCfg.RMin, RMax: ruleCfg.RMax, CoverThreshold: ruleCfg.CoverThreshold,
		})
		mask = geom.RasterizeCircles(sim.N, sim.N, shots)
	case "develset", "neuralilt", "multiilt":
		iltCfg := ilt.DefaultConfig()
		iltCfg.Iterations = *iters
		var e ilt.Engine
		switch strings.ToLower(*method) {
		case "develset":
			e = &ilt.LevelSet{Cfg: iltCfg}
		case "neuralilt":
			e = &ilt.CycleILT{Cfg: iltCfg}
		default:
			e = &ilt.MultiLevel{Cfg: iltCfg}
		}
		pixel := e.Optimize(sim, target)
		shots = fracture.CircleRule(pixel, ruleCfg)
		mask = geom.RasterizeCircles(sim.N, sim.N, shots)
	default:
		log.Fatalf("unknown method %q", *method)
	}

	if *compact {
		before := len(shots)
		shots = fracture.CompactShots(sim.N, sim.N, shots)
		mask = geom.RasterizeCircles(sim.N, sim.N, shots)
		fmt.Printf("compaction: %d -> %d shots\n", before, len(shots))
	}

	res := sim.Simulate(mask)
	rep := metrics.Evaluate(l, res.ZNom, res.ZMax, res.ZMin, len(shots))
	fmt.Printf("%s / %s: L2 %.1f nm2, PVB %.1f nm2, EPE %d, shots %d\n",
		l.Name, *method, rep.L2, rep.PVB, rep.EPE, rep.Shots)
	if v := metrics.CheckCircleMRC(shots, sim.DX, 12, 76); len(v) > 0 {
		fmt.Printf("MRC: %d violations (first: shot %d, %s)\n", len(v), v[0].Shot, v[0].Reason)
	} else {
		fmt.Println("MRC: clean")
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	// Order shots to minimize beam travel before hand-off.
	shots = fracture.OrderShots(shots)
	shotPath := filepath.Join(*outDir, l.Name+"_shots.csv")
	sf, err := os.Create(shotPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := fracture.WriteShotsCSV(sf, shots, sim.DX); err != nil {
		log.Fatal(err)
	}
	sf.Close()

	for name, g := range map[string]*grid.Real{
		"target": target, "mask": mask, "printed": res.ZNom,
	} {
		p := filepath.Join(*outDir, fmt.Sprintf("%s_%s.png", l.Name, name))
		if err := bench.GridPNG(g, p); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %s and renders under %s/\n", shotPath, *outDir)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
