// Command paperbench regenerates the paper's tables and figures on the
// synthetic benchmark suite.
//
// Usage:
//
//	paperbench [flags] [-table1] [-table2] [-table3] [-fig1] [-fig6] [-fig7]
//
// With no selection flags, everything runs. Tables and figure series print
// to stdout; Figure 6 writes PNG triptychs under -out.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"cfaopc/internal/bench"
	"cfaopc/internal/procpool"
	"cfaopc/internal/procworker"
)

// hostEnv carries the listen address into a re-exec'd TCP host for the
// -remote exhibit.
const hostEnv = "PAPERBENCH_NET_HOST"

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")

	if procpool.InWorker() {
		// Re-executed as our own tile worker for the -remote exhibit:
		// either a loopback TCP host or a pipe worker subprocess.
		if addr := os.Getenv(hostEnv); addr != "" {
			runHost(addr)
		}
		procworker.ServeIfWorker()
	}

	var (
		gridN    = flag.Int("grid", 256, "simulation grid (pixels per 2048 nm tile side): 256=8nm/px, 512=4nm/px, 2048=1nm/px")
		cases    = flag.String("cases", "", "comma-separated 1-based case subset (default: all ten)")
		baseIter = flag.Int("baseline-iters", 40, "pixel-engine iterations")
		coIter   = flag.Int("circleopt-iters", 60, "CircleOpt stage-2 iterations")
		initIter = flag.Int("init-iters", 24, "CircleOpt stage-1 MOSAIC iterations")
		kOpt     = flag.Int("kopt", 5, "kernels used during optimization")
		workers  = flag.Int("workers", -1, "litho worker goroutines (-1 = all cores, 1 = serial)")
		tileWkr  = flag.Int("tile-workers", 4, "max tile workers swept by the -flow exhibit")
		outDir   = flag.String("out", "figures", "output directory for Figure 6 PNGs")
		jsonDir  = flag.String("json", "", "also write each exhibit as JSON into this directory")
		t1       = flag.Bool("table1", false, "run Table 1")
		t2       = flag.Bool("table2", false, "run Table 2")
		t3       = flag.Bool("table3", false, "run Table 3")
		f1       = flag.Bool("fig1", false, "run Figure 1")
		f6       = flag.Bool("fig6", false, "run Figure 6 (PNG renders)")
		f7       = flag.Bool("fig7", false, "run Figure 7")
		abl      = flag.Bool("ablations", false, "run the design-choice ablations (STE, coverage repair, alpha, K_opt)")
		ext      = flag.Bool("extensions", false, "run the extension experiments (DoseOpt, greedy set cover, compaction)")
		fl       = flag.Bool("flow", false, "run the tiled full-chip flow exhibit (worker sweep, streamed vs dense-mask peak memory)")
		ft       = flag.Bool("faults", false, "run the fault-tolerance exhibit (injected faults, degradation, checkpoint resume)")
		ca       = flag.Bool("cache", false, "run the window-dedup cache exhibit (cold/warm memory and disk sweep on the repeated-cell array)")
		rm       = flag.Bool("remote", false, "run the distributed tile-worker exhibit (in-process vs worker subprocesses vs loopback TCP hosts)")
	)
	flag.Parse()

	all := !*t1 && !*t2 && !*t3 && !*f1 && !*f6 && !*f7 && !*abl && !*ext && !*fl && !*ft && !*ca && !*rm

	o := bench.DefaultOptions()
	o.GridN = *gridN
	o.BaselineIters = *baseIter
	o.CircleOptIters = *coIter
	o.InitIters = *initIter
	o.KOpt = *kOpt
	o.Workers = *workers
	if *cases != "" {
		for _, tok := range strings.Split(*cases, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				log.Fatalf("bad -cases entry %q: %v", tok, err)
			}
			o.Cases = append(o.Cases, id)
		}
	}

	emit := func(name string, v any) {
		if *jsonDir == "" {
			return
		}
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			log.Fatal(err)
		}
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*jsonDir, name+".json"), data, 0o644); err != nil {
			log.Fatal(err)
		}
	}

	start := time.Now()
	r, err := bench.NewRunner(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# grid %d (%.1f nm/px), %d cases, baseline %d iters, CircleOpt %d iters\n\n",
		o.GridN, r.Sim.DX, len(r.Suite), o.BaselineIters, o.CircleOptIters)

	if all || *t1 {
		t := r.Table1()
		fmt.Println(t.Format())
		emit("table1", t)
	}
	if all || *t2 {
		t := r.Table2()
		fmt.Println(t.Format())
		emit("table2", t)
	}
	if all || *t3 {
		t := r.Table3()
		fmt.Println(t.Format())
		emit("table3", t)
	}
	if all || *f1 {
		t := r.Figure1()
		fmt.Println(t.Format())
		emit("figure1", t)
	}
	if all || *f7 {
		shot, quality, epe := r.Figure7()
		fmt.Println(shot.Format())
		fmt.Println(quality.Format())
		fmt.Println(epe.Format())
		emit("figure7a", shot)
		emit("figure7b", quality)
		emit("figure7c", epe)
	}
	if *ext { // extensions only on request
		fmt.Println(r.ExtensionDose().Format())
		fmt.Println(r.ExtensionGreedy().Format())
		fmt.Println(r.ExtensionCompaction().Format())
	}
	if *fl { // tiled flow exhibit only on request: it optimizes a full chip per worker count
		fo := bench.DefaultFlowOptions(o.GridN)
		fo.TileWorkers = nil
		for _, tw := range []int{1, 2, *tileWkr} {
			if tw >= 1 && !containsInt(fo.TileWorkers, tw) {
				fo.TileWorkers = append(fo.TileWorkers, tw)
			}
		}
		t, err := r.FlowTable(fo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t.Format())
		emit("flow", t)
	}
	if *ca { // cache exhibit only on request: it optimizes the array five times
		co := bench.DefaultCacheOptions(o.GridN)
		dir, err := os.MkdirTemp("", "cfaopc-cache-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		co.DiskDir = dir
		t, err := r.CacheTable(co)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t.Format())
		emit("cache", t)
	}
	if *rm { // remote exhibit only on request: it optimizes the chip once per transport
		ro := bench.DefaultRemoteOptions(o.GridN)
		self, err := os.Executable()
		if err != nil {
			log.Fatal(err)
		}
		ro.WorkerCmd = func() *exec.Cmd {
			cmd := exec.Command(self)
			cmd.Stderr = os.Stderr
			return cmd
		}
		ro.StartHost = func() (string, func(), error) { return startHost(self) }
		t, err := r.RemoteTable(ro)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t.Format())
		emit("remote", t)
	}
	if *ft { // fault exhibit only on request: it runs the faulted chip three times
		t, err := r.FaultTable(bench.DefaultFaultOptions(o.GridN))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t.Format())
		emit("faults", t)
	}
	if *abl { // ablations only on request: they re-run CircleOpt repeatedly
		fmt.Println(r.AblationSTE().Format())
		fmt.Println(r.AblationCoverageRepair().Format())
		fmt.Println(r.AblationAlpha([]float64{2, 4, 8, 16}).Format())
		fmt.Println(r.AblationKernels([]int{2, 5, 9}).Format())
	}
	if all || *f6 {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for ci := range r.Suite {
			files, err := r.RenderCase(ci, *outDir)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("Figure 6: wrote %s\n", strings.Join(files, ", "))
		}
		fmt.Println()
	}
	fmt.Printf("# total wall time: %s\n", time.Since(start).Round(time.Second))
}

// runHost is the child-side TCP host for the -remote exhibit: listen,
// announce the bound address on stdout, serve handshaken coordinator
// sessions with the engine-backed runner until killed.
func runHost(addr string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LISTEN %s\n", ln.Addr())
	if err := procworker.Listen(ln, "", 5*time.Second); err != nil {
		log.Fatal(err)
	}
	os.Exit(0)
}

// startHost re-executes this binary as a loopback TCP tile-worker host
// and scrapes the address it bound.
func startHost(self string) (string, func(), error) {
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(), procpool.WorkerEnv+"=1", hostEnv+"=127.0.0.1:0")
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "LISTEN "); ok {
			go io.Copy(io.Discard, out)
			stop := func() {
				cmd.Process.Kill()
				cmd.Wait()
			}
			return addr, stop, nil
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	return "", nil, fmt.Errorf("host exited before announcing its address")
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
