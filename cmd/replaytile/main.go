// Command replaytile re-runs a quarantine repro bundle written by the
// tiled flow (cfaopc -quarantine-dir) and reports whether the recorded
// failure reproduces, attempt by attempt.
//
// Usage:
//
//	replaytile bundle.qrb               # does the failure reproduce?
//	replaytile -fixed circlerule b.qrb  # does a candidate engine fix it?
//	replaytile -no-faults b.qrb         # does it fail without the injected script?
//
// Exit status: 0 when the failure reproduced (or, with -fixed, when the
// fix made the tile succeed); 2 when it did not; 1 on error. The
// attempt table diffs the replayed error sequence against the one the
// live run recorded, so a divergence points at nondeterminism rather
// than at the captured inputs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cfaopc/internal/quarantine"
	"cfaopc/internal/replay"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("replaytile: ")

	var (
		fixed    = flag.String("fixed", "", "replace the primary engine with this method and test the fix")
		workers  = flag.Int("workers", 0, "per-kernel litho goroutines (0/1 serial, -1 = all cores)")
		noFaults = flag.Bool("no-faults", false, "skip re-injecting the bundle's recorded fault script")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: replaytile [flags] bundle.qrb")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	b, err := quarantine.Load(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bundle: layout %q tile %d core(%d,%d) window %dpx, engines %s→%s, %d recorded attempts\n",
		b.LayoutName, b.Tile.Index, b.Tile.CX, b.Tile.CY, b.Tile.WindowPx,
		b.Engines.Primary, orNone(b.Engines.Fallback), len(b.Attempts))

	start := time.Now()
	rep, err := replay.Run(ctx, b, replay.Options{Fixed: *fixed, Workers: *workers, NoFaults: *noFaults})
	if err != nil {
		log.Fatal(err)
	}

	for _, d := range rep.Attempts {
		mark := "=="
		if !d.Match {
			mark = "!="
		}
		fmt.Printf("  attempt %d: recorded [%s] %s\n             replayed [%s] %s  %s\n",
			d.Index, d.Recorded.Engine, orClean(d.Recorded.Err),
			d.Replayed.Engine, orClean(d.Replayed.Err), mark)
	}
	fmt.Printf("replay: path=%s attempts=%d wall=%s\n",
		orNone(rep.Stat.Path), rep.Stat.Attempts, time.Since(start).Round(time.Millisecond))

	switch {
	case *fixed != "":
		if rep.Fixed {
			fmt.Printf("FIXED: primary %q succeeds on the captured window (%d shots)\n", *fixed, len(rep.Shots))
			return
		}
		fmt.Printf("NOT FIXED: primary %q still ends on path %q\n", *fixed, rep.Stat.Path)
		os.Exit(2)
	case rep.Reproduced:
		fmt.Println("REPRODUCED: identical attempt-by-attempt failure sequence")
	default:
		fmt.Println("NOT REPRODUCED: replay diverged from the recorded history")
		os.Exit(2)
	}
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

func orClean(s string) string {
	if s == "" {
		return "ok"
	}
	return s
}
