// Command tileworker is the standalone tile-worker binary for the
// tiled flow's distributed modes. By default it speaks the procpool
// frame protocol on stdin/stdout (the -proc-workers subprocess
// transport); with -listen it becomes a multi-host shard: a TCP server
// speaking the same protocol, one handshaken session per coordinator
// connection (flow.Config.RemoteHosts). cmd/cfaopc re-executes itself
// as its own pipe worker by default, so the pipe mode of this binary
// exists for deployments that want the worker pinned to a separate
// (smaller, or differently sandboxed) executable via -worker-bin.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cfaopc/internal/procworker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tileworker: ")
	listen := flag.String("listen", "", "serve tile tasks over TCP on this address (e.g. :9643); empty serves stdin/stdout")
	fingerprint := flag.String("fingerprint", "", "config fingerprint pin: reject coordinators whose run config differs (empty accepts any)")
	handshake := flag.Duration("handshake", 5*time.Second, "deadline for each connection's Hello exchange")
	flag.Parse()

	if *listen == "" {
		if err := procworker.Serve(os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s", ln.Addr())
	// SIGINT/SIGTERM close the listener; in-flight sessions finish
	// their current task stream before Listen returns.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("shutting down")
		ln.Close()
	}()
	if err := procworker.Listen(ln, *fingerprint, *handshake); err != nil {
		log.Fatal(err)
	}
}
