// Command tileworker is the standalone tile-worker binary for the
// tiled flow's -proc-workers mode: it speaks the procpool frame
// protocol on stdin/stdout and runs each dispatched window through the
// engine chain its task names. cmd/cfaopc re-executes itself as its own
// worker by default, so this binary exists for deployments that want
// the worker pinned to a separate (smaller, or differently sandboxed)
// executable via -worker-bin.
package main

import (
	"log"
	"os"

	"cfaopc/internal/procworker"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tileworker: ")
	if err := procworker.Serve(os.Stdin, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
