// Command pwplot sweeps a dose–defocus process-window matrix for one
// benchmark case's optimized mask and prints the CD matrix plus the depth
// of focus — the analysis behind the circular-writer paper's "best depth
// of focus with less shot count" claim.
//
// Usage:
//
//	pwplot -case 1 [-method circleopt|target] [-grid 256]
package main

import (
	"flag"
	"fmt"
	"log"

	"cfaopc/internal/core"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/metrics"
	"cfaopc/internal/optics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pwplot: ")
	var (
		caseID = flag.Int("case", 1, "benchmark case (1-10)")
		gridN  = flag.Int("grid", 256, "simulation grid")
		method = flag.String("method", "circleopt", "mask source: circleopt | target (no OPC)")
		iters  = flag.Int("iters", 40, "CircleOpt iterations")
	)
	flag.Parse()
	if *caseID < 1 || *caseID > 10 {
		log.Fatal("case must be 1..10")
	}
	l := layout.GenerateSuite()[*caseID-1]

	cfg := optics.Default()
	cfg.TileNM = float64(l.TileNM)
	sim, err := litho.New(cfg, *gridN)
	if err != nil {
		log.Fatal(err)
	}
	sim.KOpt = 5
	target := l.Rasterize(*gridN)

	var mask *grid.Real
	switch *method {
	case "target":
		mask = target
	case "circleopt":
		coCfg := core.DefaultConfig(sim.DX)
		coCfg.Iterations = *iters
		res := (&core.CircleOpt{Cfg: coCfg, InitIterations: 16}).Optimize(sim, target)
		mask = res.Mask
		fmt.Printf("CircleOpt mask: %d shots\n", len(res.Shots))
	default:
		log.Fatalf("unknown method %q", *method)
	}

	gauges := metrics.AutoGauges(l, *gridN, 100)
	if len(gauges) == 0 {
		log.Fatal("layout has no gaugeable feature")
	}
	pw := litho.PWConfig{
		DefocusNM: []float64{0, 10, 20, 30, 40, 50, 60, 80},
		Doses:     []float64{0.92, 0.96, 1.0, 1.04, 1.08},
		Gauge:     gauges[0],
		Tolerance: 0.10,
	}
	points, err := litho.ProcessWindow(cfg, *gridN, mask, pw)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nCD (nm) at gauge row %d; * = within ±10%% of nominal\n", pw.Gauge.Y)
	fmt.Printf("%10s", "defocus\\dose")
	for _, d := range pw.Doses {
		fmt.Printf("%9.2f", d)
	}
	fmt.Println()
	for _, z := range pw.DefocusNM {
		fmt.Printf("%10.0f", z)
		for _, d := range pw.Doses {
			for _, p := range points {
				if p.DefocusNM == z && p.Dose == d {
					mark := " "
					if p.InSpec {
						mark = "*"
					}
					fmt.Printf("%8.0f%s", p.CDnm, mark)
				}
			}
		}
		fmt.Println()
	}
	fmt.Printf("\ndepth of focus (all doses in spec):  %.0f nm\n", litho.DepthOfFocus(points, 1.0))
	fmt.Printf("depth of focus (60%% dose latitude): %.0f nm\n", litho.DepthOfFocus(points, 0.6))
}
