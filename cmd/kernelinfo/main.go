// Command kernelinfo inspects the SOCS optical kernels computed from an
// imaging condition: eigenvalue spectrum, cumulative energy capture, and
// optional PNG renders of each kernel's spatial intensity — the
// diagnostics one uses to choose how many kernels an optimization loop
// needs.
//
// Usage:
//
//	kernelinfo [-na 1.35] [-sigma-in 0.5] [-sigma-out 0.8] [-defocus] [-png dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/cmplx"
	"os"
	"path/filepath"

	"cfaopc/internal/bench"
	"cfaopc/internal/fft"
	"cfaopc/internal/grid"
	"cfaopc/internal/optics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kernelinfo: ")
	var (
		tile     = flag.Float64("tile", 2048, "tile size (nm)")
		na       = flag.Float64("na", 1.35, "numerical aperture")
		sigmaIn  = flag.Float64("sigma-in", 0.5, "annular source inner sigma")
		sigmaOut = flag.Float64("sigma-out", 0.8, "annular source outer sigma")
		defocus  = flag.Bool("defocus", false, "apply the defocus aberration")
		defocusZ = flag.Float64("defocus-nm", 25, "defocus distance (nm)")
		k        = flag.Int("k", 24, "kernels to compute")
		pngDir   = flag.String("png", "", "write per-kernel spatial intensity PNGs here")
		pngGrid  = flag.Int("png-grid", 128, "PNG render grid")
	)
	flag.Parse()

	cfg := optics.Default()
	cfg.TileNM = *tile
	cfg.NA = *na
	cfg.SigmaIn = *sigmaIn
	cfg.SigmaOut = *sigmaOut
	cfg.DefocusNM = *defocusZ
	cfg.NumKernels = *k

	set, err := optics.CachedKernels(cfg, *defocus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("condition: λ=%gnm NA=%g σ=[%g,%g] tile=%gnm defocus=%v\n",
		cfg.Wavelength, cfg.NA, cfg.SigmaIn, cfg.SigmaOut, cfg.TileNM, *defocus)
	fmt.Printf("kernels: %d, frequency support half-width: %d bins\n\n",
		len(set.Kernels), set.Kernels[0].Half)

	total := 0.0
	for _, kn := range set.Kernels {
		total += kn.Weight
	}
	fmt.Printf("%4s %12s %10s %10s\n", "k", "weight", "rel", "cumul")
	cum := 0.0
	for i, kn := range set.Kernels {
		cum += kn.Weight
		fmt.Printf("%4d %12.6g %10.4f %10.4f\n", i, kn.Weight, kn.Weight/set.Kernels[0].Weight, cum/total)
	}

	if *pngDir == "" {
		return
	}
	if err := os.MkdirAll(*pngDir, 0o755); err != nil {
		log.Fatal(err)
	}
	n := *pngGrid
	for i := range set.Kernels {
		kn := &set.Kernels[i]
		// Spatial kernel: inverse transform of the compact spectrum
		// embedded in an n×n frequency grid, fftshifted for display.
		freq := grid.NewComplex(n, n)
		for by := -kn.Half; by <= kn.Half; by++ {
			for bx := -kn.Half; bx <= kn.Half; bx++ {
				v := kn.At(bx, by)
				if v == 0 {
					continue
				}
				freq.Set((bx+n)%n, (by+n)%n, v)
			}
		}
		fft.Inverse2D(freq)
		img := grid.NewReal(n, n)
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				// Center the kernel for viewing.
				sx, sy := (x+n/2)%n, (y+n/2)%n
				img.Set(x, y, cmplx.Abs(freq.At(sx, sy)))
			}
		}
		path := filepath.Join(*pngDir, fmt.Sprintf("kernel_%02d.png", i))
		if err := bench.GridPNG(img, path); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nwrote %d kernel renders to %s/\n", len(set.Kernels), *pngDir)
}
