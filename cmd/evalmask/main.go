// Command evalmask scores an existing circular shot list against a target
// layout: it reconstructs the mask from the shots, simulates the three
// process corners, and reports L2 / PVB / EPE / #Shot plus MRC status.
//
// Usage:
//
//	evalmask -layout case1.glp -shots case1_shots.csv [-grid 256]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cfaopc/internal/fracture"
	"cfaopc/internal/geom"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/metrics"
	"cfaopc/internal/optics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evalmask: ")
	var (
		layoutPath = flag.String("layout", "", "target layout (.glp)")
		shotsPath  = flag.String("shots", "", "circular shot list (.csv)")
		gridN      = flag.Int("grid", 256, "simulation grid")
		rMin       = flag.Float64("rmin", 12, "MRC minimum radius (nm)")
		rMax       = flag.Float64("rmax", 76, "MRC maximum radius (nm)")
	)
	flag.Parse()
	if *layoutPath == "" || *shotsPath == "" {
		log.Fatal("need -layout and -shots")
	}

	lf, err := os.Open(*layoutPath)
	if err != nil {
		log.Fatal(err)
	}
	l, err := layout.Parse(lf)
	lf.Close()
	if err != nil {
		log.Fatal(err)
	}

	cfg := optics.Default()
	cfg.TileNM = float64(l.TileNM)
	sim, err := litho.New(cfg, *gridN)
	if err != nil {
		log.Fatal(err)
	}

	sf, err := os.Open(*shotsPath)
	if err != nil {
		log.Fatal(err)
	}
	shots, err := fracture.ReadShotsCSV(sf, sim.DX)
	sf.Close()
	if err != nil {
		log.Fatal(err)
	}

	mask := geom.RasterizeCircles(sim.N, sim.N, shots)
	res := sim.Simulate(mask)
	rep := metrics.Evaluate(l, res.ZNom, res.ZMax, res.ZMin, len(shots))
	fmt.Printf("%s: L2 %.1f nm2, PVB %.1f nm2, EPE %d, shots %d\n",
		l.Name, rep.L2, rep.PVB, rep.EPE, rep.Shots)
	viol := metrics.CheckCircleMRC(shots, sim.DX, *rMin, *rMax)
	if len(viol) == 0 {
		fmt.Println("MRC: clean")
		return
	}
	fmt.Printf("MRC: %d violations\n", len(viol))
	for i, v := range viol {
		if i >= 10 {
			fmt.Printf("  … %d more\n", len(viol)-10)
			break
		}
		fmt.Printf("  shot %d: %s\n", v.Shot, v.Reason)
	}
	os.Exit(1)
}
