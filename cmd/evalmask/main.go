// Command evalmask scores an existing circular shot list against a target
// layout: it reconstructs the mask from the shots, simulates the three
// process corners, and reports L2 / PVB / EPE / #Shot plus MRC status.
//
// Usage:
//
//	evalmask -layout case1.glp -shots case1_shots.csv [-grid 256]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"cfaopc/internal/fracture"
	"cfaopc/internal/geom"
	"cfaopc/internal/grid"
	"cfaopc/internal/layout"
	"cfaopc/internal/litho"
	"cfaopc/internal/metrics"
	"cfaopc/internal/optics"
)

// validateShots rejects shot lists that would silently score as garbage:
// non-finite coordinates or radii, non-positive radii, and centers
// outside the simulation grid. Coordinates are in grid pixels.
func validateShots(shots []geom.Circle, gridN int) error {
	if len(shots) == 0 {
		return fmt.Errorf("shot list is empty")
	}
	for i, s := range shots {
		if math.IsNaN(s.X) || math.IsInf(s.X, 0) ||
			math.IsNaN(s.Y) || math.IsInf(s.Y, 0) ||
			math.IsNaN(s.R) || math.IsInf(s.R, 0) {
			return fmt.Errorf("shot %d is not finite: %+v", i, s)
		}
		if s.R <= 0 {
			return fmt.Errorf("shot %d has non-positive radius %g px", i, s.R)
		}
		if s.X < 0 || s.X >= float64(gridN) || s.Y < 0 || s.Y >= float64(gridN) {
			return fmt.Errorf("shot %d center (%g, %g) px outside the %d px grid (wrong -grid or wrong layout?)",
				i, s.X, s.Y, gridN)
		}
	}
	return nil
}

// validateMask is the last line of defense before simulation: the
// reconstructed mask must match the simulator grid and carry no NaN/Inf.
func validateMask(mask *grid.Real, gridN int) error {
	if mask.W != gridN || mask.H != gridN {
		return fmt.Errorf("mask is %dx%d, want %dx%d", mask.W, mask.H, gridN, gridN)
	}
	if mask.HasNaN() {
		return fmt.Errorf("mask contains NaN/Inf pixels")
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("evalmask: ")
	var (
		layoutPath = flag.String("layout", "", "target layout (.glp)")
		shotsPath  = flag.String("shots", "", "circular shot list (.csv)")
		gridN      = flag.Int("grid", 256, "simulation grid")
		rMin       = flag.Float64("rmin", 12, "MRC minimum radius (nm)")
		rMax       = flag.Float64("rmax", 76, "MRC maximum radius (nm)")
	)
	flag.Parse()
	if *layoutPath == "" || *shotsPath == "" {
		log.Fatal("need -layout and -shots")
	}

	lf, err := os.Open(*layoutPath)
	if err != nil {
		log.Fatal(err)
	}
	l, err := layout.Parse(lf)
	lf.Close()
	if err != nil {
		log.Fatal(err)
	}

	cfg := optics.Default()
	cfg.TileNM = float64(l.TileNM)
	sim, err := litho.New(cfg, *gridN)
	if err != nil {
		log.Fatal(err)
	}

	sf, err := os.Open(*shotsPath)
	if err != nil {
		log.Fatal(err)
	}
	shots, err := fracture.ReadShotsCSV(sf, sim.DX)
	sf.Close()
	if err != nil {
		log.Fatal(err)
	}
	if err := validateShots(shots, sim.N); err != nil {
		log.Fatalf("invalid shot list %s: %v", *shotsPath, err)
	}

	mask := geom.RasterizeCircles(sim.N, sim.N, shots)
	if err := validateMask(mask, sim.N); err != nil {
		log.Fatalf("invalid mask from %s: %v", *shotsPath, err)
	}
	res := sim.Simulate(mask)
	rep := metrics.Evaluate(l, res.ZNom, res.ZMax, res.ZMin, len(shots))
	fmt.Printf("%s: L2 %.1f nm2, PVB %.1f nm2, EPE %d, shots %d\n",
		l.Name, rep.L2, rep.PVB, rep.EPE, rep.Shots)
	viol := metrics.CheckCircleMRC(shots, sim.DX, *rMin, *rMax)
	if len(viol) == 0 {
		fmt.Println("MRC: clean")
		return
	}
	fmt.Printf("MRC: %d violations\n", len(viol))
	for i, v := range viol {
		if i >= 10 {
			fmt.Printf("  … %d more\n", len(viol)-10)
			break
		}
		fmt.Printf("  shot %d: %s\n", v.Shot, v.Reason)
	}
	os.Exit(1)
}
